//! The resumable replica core: one simulated serving machine as a state
//! machine.
//!
//! [`ReplicaSim`] owns everything one machine needs between token
//! boundaries — the ready queue, the active decode set, the paged KV pool,
//! the prefix cache and the running tallies — and exposes the loop of
//! [`simulate`](crate::simulator::simulate) as resumable steps:
//! [`ReplicaSim::inject`] hands it a request, [`ReplicaSim::step_boundary`]
//! runs exactly one token boundary (admission, growth/eviction, chunk
//! scheduling, step pricing, completion harvesting), and
//! [`ReplicaSim::advance_to`] drives boundaries until the virtual clock
//! reaches a horizon. A single replica driven to completion reproduces the
//! monolithic loop bitwise; N replicas advanced on one shared clock by the
//! [`cluster`](crate::cluster) router are the multi-replica fleet.
//!
//! The boundary body is a faithful transplant of the event-heap hot loop
//! (PR 6), including the paged-KV admission/growth machinery (PR 7) and the
//! prefix-cache paths (PR 8): every operation happens in the same order on
//! the same state, so the PR 3/6 bitwise equivalence regressions hold
//! through the refactor.

use hermes_core::{
    HermesError, InferenceEngine, LatencyBreakdown, PlannedRun, PrefillChunk, SystemConfig,
    SystemKind,
};

use crate::kv::KvPool;
use crate::prefix::{PrefixCache, PrefixLease};
use crate::queue::ReadyQueue;
use crate::request::{RequestRecord, ServingRequest};
use crate::scheduler::{
    request_kv_bytes, token_kv_bytes, BatchingPolicy, KvAccounting, PreemptionPolicy,
    PrefillPolicy, PrefixCacheMode,
};
use crate::simulator::{validate_paged_capacity, worst_case_bounds, ServingSimulation};
use crate::tallies::SwapTallies;

mod active;
mod carry;

use active::{ActiveInfo, ActiveSet, PrefillingSequence};
pub(crate) use carry::CarriedRequest;

/// What one call to [`ReplicaSim::step_boundary`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryOutcome {
    /// A token boundary ran: admission, prefill and one priced step.
    Worked,
    /// The replica was idle and jumped its clock to the next pending
    /// arrival (which was within the horizon). No step was priced.
    Jumped,
    /// Nothing to do: no active work, and no pending arrival within the
    /// horizon. The clock did not move.
    Idle,
}

/// One simulated serving machine as a resumable state machine: the
/// extracted per-boundary body of [`simulate`](crate::simulator::simulate),
/// owning the ready queue, active set, KV pool, prefix cache and tallies.
///
/// Requests enter through [`ReplicaSim::inject`] (in non-decreasing arrival
/// order); the machine advances via [`ReplicaSim::step_boundary`] /
/// [`ReplicaSim::advance_to`] / [`ReplicaSim::run_to_completion`]. The
/// cluster router reads the load probes ([`ReplicaSim::outstanding`],
/// [`ReplicaSim::kv_pressure`], [`ReplicaSim::prefix_match`]) at dispatch
/// time.
pub struct ReplicaSim {
    /// The scenario knobs this replica schedules under (arrival sampling
    /// fields are unused here — sampling is the driver's job).
    sim: ServingSimulation,
    /// The planned engine, kept for worst-case re-validation of injected
    /// requests.
    engine: Box<dyn InferenceEngine>,
    /// The template plan pricing every step.
    plan: PlannedRun,
    /// Per-token KV bytes of the model.
    token_bytes: u64,
    /// Tokens per paged block (`None` under reserve accounting).
    paged_block_tokens: Option<usize>,
    /// The paged block pool (`None` under reserve accounting).
    pool: Option<KvPool>,
    /// The radix cache of resident prompt prefixes (`None` when disabled).
    cache: Option<PrefixCache>,

    // ---- per-request state, appended by `inject` ----
    requests: Vec<ServingRequest>,
    /// Arrival time of every injected request, for the empirical-rate
    /// fallback of the report.
    times: Vec<f64>,
    ranks: Vec<f64>,
    records: Vec<RequestRecord>,
    kv_bytes_per_request: Vec<u64>,
    /// Tokens each request has generated so far; survives preemption, so a
    /// resumed request re-prefills its progress (restart with recompute)
    /// and only decodes the remainder. Updated lazily, when a sequence
    /// *leaves* the active set.
    generated: Vec<usize>,
    /// Whether each request's first admission has been stamped
    /// (re-admissions after a preemption keep the original queueing delay).
    ever_admitted: Vec<bool>,
    /// Bytes each swapped-out victim is holding on the swap tier, awaiting
    /// the swap-in on resume (`None` while resident). Only SwapOut sets it.
    swapped: Vec<Option<u64>>,
    /// Leading context run stored in cache blocks instead of own pages.
    covered: Vec<usize>,
    /// Part of the covered run whose KV existed at admission (prefill
    /// skipped).
    reused: Vec<usize>,
    /// Pin on the request's cached path while it is in flight.
    lease: Vec<Option<PrefixLease>>,
    /// Requests handed back to the router by a drain/fail event; their
    /// records live on (and complete) on another replica, so they are
    /// excluded from this replica's report.
    extracted: Vec<bool>,

    // ---- loop state ----
    clock: f64,
    /// Decode steps priced so far: the virtual event counter every
    /// [`ActiveSet`] invariant is keyed on.
    step: u64,
    next_arrival: usize,
    ready: ReadyQueue,
    active: ActiveSet,
    prefilling: Vec<PrefillingSequence>,
    active_kv_bytes: u64,
    /// Joiners that have not yet generated their first token, to stamp
    /// `first_token` after the next priced step without walking the batch.
    pending_first_token: Vec<usize>,
    /// This boundary's prefill chunks, reused across boundaries so the hot
    /// path reuses one allocation.
    chunks: Vec<PrefillChunk>,

    // ---- tallies ----
    breakdown: LatencyBreakdown,
    imbalance_sum: f64,
    imbalance_samples: usize,
    generated_tokens: usize,
    completed: usize,
    swap: SwapTallies,
    kv_block_steps: u64,
    kv_used_token_steps: u64,
    kv_steps: u64,
    /// Running sum of the prefill targets of chunk-prefilling sequences.
    prefill_target_tokens: usize,
    /// Σ covered tokens over *active* (decoding) sequences.
    active_covered_tokens: u64,
    /// Prefill tokens actually recomputed (charged to the cost model).
    recomputed_prefill_tokens: usize,

    // ---- router bookkeeping (no effect on the simulation itself) ----
    /// Injected requests extracted away by drain/fail events.
    extracted_count: usize,
    /// Worst-case KV bytes of requests injected but not yet admitted — the
    /// queued half of the KV-pressure routing signal.
    waiting_kv_bytes: u64,
}

impl ReplicaSim {
    /// Plan `kind` on `config` and wrap it as an empty resumable replica
    /// scheduling under `sim`'s policies.
    ///
    /// # Errors
    ///
    /// Propagates [`ServingSimulation::validate`] and engine planning
    /// errors.
    pub fn new(
        kind: SystemKind,
        config: &SystemConfig,
        sim: ServingSimulation,
    ) -> Result<Self, HermesError> {
        sim.validate()?;
        let engine = kind.engine(config);
        let plan = engine.plan(&sim.template)?;
        let token_bytes = token_kv_bytes(&sim.template);
        let paged_block_tokens = match sim.admission.accounting {
            KvAccounting::Paged { block_tokens } => Some(block_tokens),
            KvAccounting::Reserve => None,
        };
        let pool = paged_block_tokens.map(|bt| {
            let block_bytes = bt as u64 * token_bytes;
            let capacity = sim.admission.kv_memory_bytes.map(|b| b / block_bytes);
            KvPool::new(bt, block_bytes, capacity, 0)
        });
        let cache = match sim.prefix_cache {
            PrefixCacheMode::Disabled => None,
            PrefixCacheMode::Lru => Some(PrefixCache::new(
                // hermes-lint: allow(D3, reason = "validate_prefix_cache rejected any cache mode without paged accounting")
                paged_block_tokens.expect("prefix cache validated to require paged accounting"),
            )),
        };
        Ok(ReplicaSim {
            sim,
            engine,
            plan,
            token_bytes,
            paged_block_tokens,
            pool,
            cache,
            requests: Vec::new(),
            times: Vec::new(),
            ranks: Vec::new(),
            records: Vec::new(),
            kv_bytes_per_request: Vec::new(),
            generated: Vec::new(),
            ever_admitted: Vec::new(),
            swapped: Vec::new(),
            covered: Vec::new(),
            reused: Vec::new(),
            lease: Vec::new(),
            extracted: Vec::new(),
            clock: 0.0,
            step: 0,
            next_arrival: 0,
            ready: ReadyQueue::new(),
            active: ActiveSet::new(0),
            prefilling: Vec::new(),
            active_kv_bytes: 0,
            pending_first_token: Vec::new(),
            chunks: Vec::new(),
            breakdown: LatencyBreakdown::default(),
            imbalance_sum: 0.0,
            imbalance_samples: 0,
            generated_tokens: 0,
            completed: 0,
            swap: SwapTallies::default(),
            kv_block_steps: 0,
            kv_used_token_steps: 0,
            kv_steps: 0,
            prefill_target_tokens: 0,
            active_covered_tokens: 0,
            recomputed_prefill_tokens: 0,
            extracted_count: 0,
            waiting_kv_bytes: 0,
        })
    }

    /// Re-validate the engine plan and the paged pool against sampled
    /// requests whose lengths may exceed the template's (the worst-case
    /// bounds re-plan). The cluster driver passes the *global* request
    /// set: any replica can receive any request through failover.
    ///
    /// # Errors
    ///
    /// Engine planning errors for the worst-case bounds, and
    /// [`HermesError::InvalidConfig`] when a request could never fit the
    /// paged pool at full context.
    pub fn validate_requests(&self, requests: &[ServingRequest]) -> Result<(), HermesError> {
        for bound in worst_case_bounds(&self.sim.template, requests) {
            self.engine.plan(&bound)?;
        }
        if let Some(pool) = &self.pool {
            validate_paged_capacity(
                pool.block_tokens(),
                pool.capacity_blocks(),
                requests,
                &self.sim,
            )?;
        }
        Ok(())
    }

    /// Hand the replica a request with its (globally computed) scheduling
    /// rank. Requests must be injected in non-decreasing arrival order —
    /// the replica's event loop pulls them into the ready queue as its
    /// clock passes their arrival times.
    pub fn inject(&mut self, request: ServingRequest, rank: f64) {
        let record = RequestRecord {
            id: request.id,
            arrival: request.arrival,
            admitted: 0.0,
            first_token: 0.0,
            completed: 0.0,
            prompt_len: request.prompt_len,
            gen_len: request.gen_len,
            class: request.class,
            preemptions: 0,
            reused_prefix_tokens: 0,
        };
        self.inject_inner(request, rank, 0, false, record);
    }

    /// Re-dispatch a request extracted from another replica: its record
    /// (original arrival/admission stamps) and decode progress travel with
    /// it, and the restart-with-recompute path re-prefills the progress.
    /// `arrival` is the re-dispatch time (the drain/fail event time).
    pub(crate) fn inject_carried(&mut self, mut carried: CarriedRequest, arrival: f64) {
        carried.request.arrival = arrival;
        self.inject_inner(
            carried.request,
            carried.rank,
            carried.generated,
            carried.ever_admitted,
            carried.record,
        );
    }

    fn inject_inner(
        &mut self,
        request: ServingRequest,
        rank: f64,
        generated: usize,
        ever_admitted: bool,
        record: RequestRecord,
    ) {
        debug_assert!(
            self.times.last().is_none_or(|&t| request.arrival >= t),
            "requests must be injected in arrival order"
        );
        let idx = self.requests.len();
        let kv = request_kv_bytes(&self.sim.template, request.prompt_len, request.gen_len);
        self.times.push(request.arrival);
        self.ranks.push(rank);
        self.records.push(record);
        self.kv_bytes_per_request.push(kv);
        self.generated.push(generated);
        self.ever_admitted.push(ever_admitted);
        self.swapped.push(None);
        self.covered.push(0);
        self.reused.push(0);
        self.lease.push(None);
        self.extracted.push(false);
        self.active.ensure_slots(idx + 1);
        if let Some(pool) = self.pool.as_mut() {
            pool.ensure_slots(idx + 1);
        }
        self.waiting_kv_bytes += kv;
        self.requests.push(request);
    }

    /// The replica's virtual clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Requests injected and neither completed nor extracted away.
    pub fn outstanding(&self) -> usize {
        self.requests.len() - self.extracted_count - self.completed
    }

    /// Requests completed on this replica.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Tokens generated on this replica so far.
    pub fn generated_tokens(&self) -> usize {
        self.generated_tokens
    }

    /// The KV-pressure routing signal: bytes held by resident work (pool
    /// blocks under paged accounting, reservations under reserve) plus the
    /// worst-case bytes of requests waiting for admission, over the
    /// replica's KV budget. 0.0 for an unbounded budget — an uncapped
    /// replica never pushes back.
    pub fn kv_pressure(&self) -> f64 {
        let Some(budget) = self.sim.admission.kv_memory_bytes else {
            return 0.0;
        };
        let held = match &self.pool {
            Some(pool) => pool.used_blocks() * pool.block_bytes(),
            None => self.active_kv_bytes,
        };
        (held + self.waiting_kv_bytes) as f64 / budget as f64
    }

    /// Prompt-prefix tokens of `prefix` already resident in this replica's
    /// prefix cache (0 without a cache) — the prefix-affinity routing
    /// signal. Side-effect-free: probing does not touch the cache's stats
    /// or LRU state.
    pub fn prefix_match(&self, prefix: &[u64]) -> usize {
        match &self.cache {
            Some(cache) => {
                let cacheable = cache.cacheable(prefix.len());
                cache.plan(&prefix[..cacheable]).matched
            }
            None => 0,
        }
    }

    /// The earliest virtual time at which this replica has work to do:
    /// its current clock while anything is queued, prefilling or decoding;
    /// the next pending arrival when idle; `None` when fully drained.
    pub fn next_event_time(&self) -> Option<f64> {
        if !self.active.is_empty() || !self.prefilling.is_empty() || !self.ready.is_empty() {
            Some(self.clock)
        } else if self.next_arrival < self.requests.len() {
            Some(self.clock.max(self.requests[self.next_arrival].arrival))
        } else {
            None
        }
    }

    /// Drive token boundaries until the clock reaches `horizon` or the
    /// replica goes idle (no active work and no pending arrival within the
    /// horizon).
    ///
    /// # Errors
    ///
    /// Propagates the unsatisfiable-admission error of
    /// [`ReplicaSim::step_boundary`].
    pub fn advance_to(&mut self, horizon: f64) -> Result<(), HermesError> {
        while self.clock < horizon {
            match self.step_boundary(horizon)? {
                BoundaryOutcome::Worked | BoundaryOutcome::Jumped => {}
                BoundaryOutcome::Idle => break,
            }
        }
        Ok(())
    }

    /// Drive token boundaries until no work is left at all.
    ///
    /// # Errors
    ///
    /// Propagates the unsatisfiable-admission error of
    /// [`ReplicaSim::step_boundary`].
    pub fn run_to_completion(&mut self) -> Result<(), HermesError> {
        loop {
            match self.step_boundary(f64::INFINITY)? {
                BoundaryOutcome::Worked | BoundaryOutcome::Jumped => {}
                BoundaryOutcome::Idle => return Ok(()),
            }
        }
    }

    /// Shared eviction bookkeeping of the admission scan and the paged
    /// growth pass: release the victim's seat and KV, record its progress,
    /// and — under SwapOut — page its held KV out to the swap tier, priced
    /// through the engine's swap-cost hook.
    fn evict_victim(&mut self, victim: usize) {
        let info = self.active.remove(victim);
        self.generated[victim] += (self.step - info.join_step) as usize;
        self.records[victim].preemptions += 1;
        self.active_covered_tokens -= self.covered[victim] as u64;
        let held_bytes = match self.pool.as_mut() {
            Some(pool) => pool.release(victim) * pool.block_bytes(),
            None => {
                self.active_kv_bytes -= info.kv_bytes;
                (self.requests[victim].prompt_len + self.generated[victim]) as u64
                    * self.token_bytes
            }
        };
        if self.sim.preemption == PreemptionPolicy::SwapOut {
            // Only the victim's own pages travel to the swap tier; its
            // covered prefix stays resident in the cache, pinned by the
            // lease it keeps until completion.
            let cost = self.plan.cost.swap_cost(held_bytes);
            self.clock += cost;
            self.breakdown.communication += cost;
            self.swap.seconds += cost;
            self.swap.swap_outs += 1;
            self.swap.swapped_out_bytes += held_bytes;
            self.swapped[victim] = Some(held_bytes);
        } else {
            // Restart-with-recompute drops the victim's cache claim; its
            // re-admission consults the cache afresh.
            if let (Some(cache), Some(l)) = (self.cache.as_mut(), self.lease[victim].take()) {
                cache.release(l);
            }
            self.covered[victim] = 0;
            self.reused[victim] = 0;
        }
        self.ready.push(self.ranks[victim], victim);
        self.waiting_kv_bytes += self.kv_bytes_per_request[victim];
    }

    /// Run exactly one token boundary: pull arrivals, admit (evicting under
    /// preemption), resume swapped victims, prefill, grow paged sequences,
    /// price one step and harvest completions. When the replica is idle the
    /// clock instead jumps to the next pending arrival — but only within
    /// `horizon`, so a fleet driver can line replicas up on a shared clock
    /// without any replica overshooting a future injection.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidConfig`] when the admission caps can
    /// never admit the queue head into an idle system.
    pub fn step_boundary(&mut self, horizon: f64) -> Result<BoundaryOutcome, HermesError> {
        // 1. Pull every request that has arrived by now into the queue.
        while self.next_arrival < self.requests.len()
            && self.requests[self.next_arrival].arrival <= self.clock
        {
            self.ready
                .push(self.ranks[self.next_arrival], self.next_arrival);
            self.next_arrival += 1;
        }

        // 2. Admit from the queue at this token boundary, in scheduling
        // order (FCFS / priority / EDF — arrival order within a rank).
        // Admission reserves the request's KV budget and batch slot; the
        // `admitted` timestamp is stamped later, when its prefill work
        // actually starts. When the best-ranked waiter does not fit and
        // preemption is on, strictly lower-ranked active sequences are
        // evicted (worst-ranked first) until it does.
        let may_admit = match self.sim.policy {
            BatchingPolicy::Continuous => true,
            BatchingPolicy::Static => self.active.is_empty() && self.prefilling.is_empty(),
        };
        let mut admitted: Vec<usize> = Vec::new();
        if may_admit {
            while let Some(idx) = self.ready.peek() {
                // `active_kv_bytes` (reserve) / the pool's held blocks
                // (paged) already include the requests admitted at this
                // boundary, so the caps see the whole provisional batch.
                // Paged accounting charges only the blocks for the
                // request's *current* context (prompt plus generated so
                // far) plus one write slot for the next decoded token, not
                // its worst-case footprint. The write slot guarantees an
                // admitted sequence generates at least one token before it
                // can need to grow — without it, a sequence rejoining with
                // its context exactly at a block boundary would be a grower
                // at its very next boundary and could self-evict in a
                // zero-progress admit/evict livelock.
                let kv = self.kv_bytes_per_request[idx];
                let seats = self.active.len() + self.prefilling.len() + admitted.len();
                if self.sim.prefix_cache != PrefixCacheMode::Disabled {
                    // Cache-aware paged admission. A fresh admission (or an
                    // evict-and-refill re-admission, whose claim was
                    // dropped) consults the cache: its matched run maps the
                    // resident blocks copy-free, and — when the unmatched
                    // cacheable remainder is insertable — the request also
                    // funds the blocks that will cache it for later
                    // requests. A resuming swap-out victim keeps the lease
                    // it never released and only needs pages for its
                    // uncovered remainder. Unpinned cache blocks off the
                    // matched path count as reclaimable capacity: they are
                    // evicted before an admission is declared infeasible.
                    let request = &self.requests[idx];
                    let ctx1 = request.prompt_len + self.generated[idx] + 1;
                    let bt = self
                        .paged_block_tokens
                        // hermes-lint: allow(D3, reason = "cache mode is rejected at construction unless paged accounting is on")
                        .expect("cache requires paged accounting");
                    let resumed = self.swapped[idx].is_some();
                    // hermes-lint: allow(D3, reason = "cache mode implies the prefix cache was constructed")
                    let c = self.cache.as_ref().expect("cache mode");
                    // hermes-lint: allow(D3, reason = "cache mode is rejected at construction unless a paged pool exists")
                    let p = self.pool.as_ref().expect("cache requires a paged pool");
                    let cap = p.capacity_blocks().unwrap_or(u64::MAX);
                    let (lookup_len, plan) = if resumed {
                        (0, c.plan(&[]))
                    } else {
                        let cacheable = c.cacheable(request.prefix.len());
                        (cacheable, c.plan(&request.prefix[..cacheable]))
                    };
                    let do_insert = !resumed && plan.can_insert && plan.matched < lookup_len;
                    let target_covered = if resumed {
                        self.covered[idx]
                    } else if do_insert {
                        lookup_len
                    } else {
                        plan.matched
                    };
                    let insert_blocks = if do_insert {
                        ((lookup_len - plan.matched) / bt) as u64
                    } else {
                        0
                    };
                    let own = p.blocks_for_tokens(ctx1 - target_covered);
                    let extra = own + insert_blocks;
                    if self.sim.admission.admits(seats, 0, 0)
                        && p.used_blocks() + extra <= cap.saturating_add(plan.freeable_blocks)
                    {
                        self.ready.pop();
                        self.waiting_kv_bytes -= kv;
                        if !resumed {
                            let (l, matched) = self
                                .cache
                                .as_mut()
                                // hermes-lint: allow(D3, reason = "cache mode implies the prefix cache was constructed")
                                .expect("cache mode")
                                .acquire(&self.requests[idx].prefix[..lookup_len]);
                            debug_assert_eq!(matched, plan.matched, "plan and acquire must agree");
                            self.lease[idx] = Some(l);
                            // Only the *matched* run skips prefill; an
                            // inserted run is cache-resident but this
                            // request still computes it (into the cache's
                            // blocks).
                            self.reused[idx] = matched;
                            if !self.ever_admitted[idx] {
                                self.records[idx].reused_prefix_tokens = matched;
                            }
                        }
                        // hermes-lint: allow(D3, reason = "cache mode is rejected at construction unless a paged pool exists")
                        let pool_mut = self.pool.as_mut().expect("cache requires a paged pool");
                        let shortfall = (pool_mut.used_blocks() + extra).saturating_sub(cap);
                        if shortfall > 0 {
                            let freed = self
                                .cache
                                .as_mut()
                                // hermes-lint: allow(D3, reason = "cache mode implies the prefix cache was constructed")
                                .expect("cache mode")
                                .evict_for(shortfall);
                            pool_mut.surrender_blocks(&freed);
                        }
                        if do_insert {
                            let ids = pool_mut.acquire_blocks(insert_blocks);
                            // hermes-lint: allow(D3, reason = "cache mode implies the prefix cache was constructed")
                            self.cache.as_mut().expect("cache mode").insert(
                                // hermes-lint: allow(D3, reason = "the lease was stored a few lines up on this same admission path")
                                self.lease[idx].expect("lease acquired above"),
                                &self.requests[idx].prefix[plan.matched..lookup_len],
                                ids,
                            );
                        }
                        self.pool
                            .as_mut()
                            // hermes-lint: allow(D3, reason = "cache mode is rejected at construction unless a paged pool exists")
                            .expect("cache requires a paged pool")
                            .allocate(idx, own);
                        self.covered[idx] = target_covered;
                        admitted.push(idx);
                        continue;
                    }
                    if self.sim.preemption != PreemptionPolicy::None {
                        // Victim coverage is conservatively treated as
                        // unreclaimable — another in-flight lease may pin
                        // the same nodes — so only the victims' own pages
                        // and the already-unpinned cache blocks count.
                        let mut victims: Vec<usize> = Vec::new();
                        let mut freed = 0u64;
                        let mut feasible = false;
                        for victim in self.active.victims_outranking(self.ranks[idx]) {
                            freed += p.held(victim);
                            victims.push(victim);
                            if self.sim.admission.admits(seats - victims.len(), 0, 0)
                                && p.used_blocks() + extra
                                    <= cap
                                        .saturating_add(plan.freeable_blocks)
                                        .saturating_add(freed)
                            {
                                feasible = true;
                                break;
                            }
                        }
                        if feasible {
                            for victim in victims {
                                self.evict_victim(victim);
                            }
                            // Retry: the released leases and pages are
                            // re-planned from scratch.
                            continue;
                        }
                    }
                    break;
                }
                let need_blocks = self.pool.as_ref().map(|p| {
                    p.blocks_for_tokens(self.requests[idx].prompt_len + self.generated[idx] + 1)
                });
                let fits = match (&self.pool, need_blocks) {
                    (Some(pool), Some(need)) => {
                        self.sim.admission.admits(seats, 0, 0) && pool.fits(need)
                    }
                    _ => self.sim.admission.admits(seats, self.active_kv_bytes, kv),
                };
                if fits {
                    self.ready.pop();
                    self.waiting_kv_bytes -= kv;
                    match (self.pool.as_mut(), need_blocks) {
                        (Some(pool), Some(need)) => pool.allocate(idx, need),
                        _ => self.active_kv_bytes += kv,
                    }
                    admitted.push(idx);
                    continue;
                }
                if self.sim.preemption != PreemptionPolicy::None {
                    // Victim candidates: active sequences strictly outranked
                    // by the blocked waiter, worst-ranked first (latest
                    // arrival first within a rank), straight off the rank
                    // index. Sequences still prefilling under chunked
                    // prefill are not evicted. Take the smallest prefix
                    // that makes room, if any.
                    let mut victims: Vec<usize> = Vec::new();
                    let mut feasible = false;
                    match (&self.pool, need_blocks) {
                        (Some(pool), Some(need)) => {
                            let cap = pool.capacity_blocks().unwrap_or(u64::MAX);
                            let mut freed = 0u64;
                            for victim in self.active.victims_outranking(self.ranks[idx]) {
                                freed += pool.held(victim);
                                victims.push(victim);
                                if self.sim.admission.admits(seats - victims.len(), 0, 0)
                                    && pool.used_blocks() - freed + need <= cap
                                {
                                    feasible = true;
                                    break;
                                }
                            }
                        }
                        _ => {
                            let mut freed_kv = 0u64;
                            for victim in self.active.victims_outranking(self.ranks[idx]) {
                                freed_kv += self.kv_bytes_per_request[victim];
                                victims.push(victim);
                                if self.sim.admission.admits(
                                    seats - victims.len(),
                                    self.active_kv_bytes - freed_kv,
                                    kv,
                                ) {
                                    feasible = true;
                                    break;
                                }
                            }
                        }
                    }
                    if feasible {
                        for victim in victims {
                            self.evict_victim(victim);
                        }
                        // Retry the blocked waiter with the freed capacity
                        // (the victims it displaced cannot outrank it).
                        continue;
                    }
                }
                break;
            }
        }

        // 2.5 Swapped-out victims among this boundary's admissions resume
        // by paging their KV back in — no recompute: they skip prefill and
        // rejoin the decode batch right here, continuing where they
        // stopped. The swap-in leg is priced like the swap-out was.
        let mut resident: Vec<usize> = Vec::with_capacity(admitted.len());
        for idx in admitted {
            let Some(bytes) = self.swapped[idx].take() else {
                resident.push(idx);
                continue;
            };
            let cost = self.plan.cost.swap_cost(bytes);
            self.clock += cost;
            self.breakdown.communication += cost;
            self.swap.seconds += cost;
            self.swap.swap_ins += 1;
            self.swap.swapped_in_bytes += bytes;
            let request = &self.requests[idx];
            self.active_covered_tokens += self.covered[idx] as u64;
            self.active.join(
                idx,
                request.prompt_len + self.generated[idx],
                request.gen_len - self.generated[idx],
                if self.pool.is_some() {
                    0
                } else {
                    self.kv_bytes_per_request[idx]
                },
                self.ranks[idx],
                self.step,
            );
        }
        let admitted = resident;

        // 3. Hand the newly admitted requests to the prefill policy. A
        // request resumed after a preemption re-prefills its prompt *plus*
        // the tokens it already generated (restart with recompute), so its
        // effective prefill length is `prompt_len + generated` — minus the
        // reused run it maps from the prefix cache, whose KV already
        // existed at admission and is never recomputed.
        match self.sim.prefill {
            PrefillPolicy::StallTheWorld => {
                // Prefill whole prompts now, one pass per effective prefill
                // length (requests sharing a length are prefilled together,
                // so an all-at-once batch pays exactly the closed-loop
                // prefill). A fully-covered request prefills nothing and
                // charges nothing.
                if !admitted.is_empty() {
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
                    for &idx in &admitted {
                        let p =
                            self.requests[idx].prompt_len + self.generated[idx] - self.reused[idx];
                        match groups.iter_mut().find(|(len, _)| *len == p) {
                            Some((_, members)) => members.push(idx),
                            None => groups.push((p, vec![idx])),
                        }
                    }
                    for (prefill_len, members) in groups {
                        // This group's prefill starts now, after every
                        // earlier group's pass has elapsed.
                        for &idx in &members {
                            if !self.ever_admitted[idx] {
                                self.records[idx].admitted = self.clock;
                                self.ever_admitted[idx] = true;
                            }
                        }
                        self.recomputed_prefill_tokens += prefill_len * members.len();
                        if prefill_len > 0 {
                            let cost = self.plan.cost.prefill_cost(prefill_len, members.len());
                            self.breakdown.prefill += cost;
                            self.clock += cost;
                        }
                    }
                    for idx in admitted {
                        let request = &self.requests[idx];
                        self.active_covered_tokens += self.covered[idx] as u64;
                        self.active.join(
                            idx,
                            request.prompt_len + self.generated[idx],
                            request.gen_len - self.generated[idx],
                            if self.pool.is_some() {
                                0
                            } else {
                                self.kv_bytes_per_request[idx]
                            },
                            self.ranks[idx],
                            self.step,
                        );
                        if self.generated[idx] == 0 {
                            self.pending_first_token.push(idx);
                        }
                    }
                }
            }
            PrefillPolicy::Chunked { .. } => {
                for idx in admitted {
                    let target =
                        self.requests[idx].prompt_len + self.generated[idx] - self.reused[idx];
                    self.recomputed_prefill_tokens += target;
                    if target == 0 {
                        // Fully covered: nothing to prefill, join the decode
                        // batch at this very boundary.
                        if !self.ever_admitted[idx] {
                            self.records[idx].admitted = self.clock;
                            self.ever_admitted[idx] = true;
                        }
                        let request = &self.requests[idx];
                        self.active_covered_tokens += self.covered[idx] as u64;
                        self.active.join(
                            idx,
                            request.prompt_len + self.generated[idx],
                            request.gen_len - self.generated[idx],
                            0,
                            self.ranks[idx],
                            self.step,
                        );
                        if self.generated[idx] == 0 {
                            self.pending_first_token.push(idx);
                        }
                        continue;
                    }
                    self.prefill_target_tokens += target;
                    self.prefilling.push(PrefillingSequence {
                        idx,
                        target,
                        done: 0,
                        started: false,
                    });
                }
            }
        }

        // 4. Schedule this boundary's prefill chunks (FCFS across the
        // requests still prefilling, up to the policy's token budget).
        // Always empty under stall-the-world, which never populates
        // `prefilling`. The buffer is reused across boundaries; every
        // scheduled chunk is non-empty, so `chunks.len()` is also the
        // number of leading `prefilling` entries touched this boundary —
        // the only ones step 7 has to rescan for completion.
        self.chunks.clear();
        if let PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        } = self.sim.prefill
        {
            let mut budget_left = budget;
            for seq in self.prefilling.iter_mut() {
                if budget_left == 0 {
                    break;
                }
                let take = chunk_tokens.min(seq.target - seq.done).min(budget_left);
                if !seq.started {
                    if !self.ever_admitted[seq.idx] {
                        self.records[seq.idx].admitted = self.clock;
                        self.ever_admitted[seq.idx] = true;
                    }
                    seq.started = true;
                }
                self.chunks.push(PrefillChunk {
                    prompt_len: seq.target,
                    tokens: take,
                });
                seq.done += take;
                budget_left -= take;
            }
        }

        // 5. Nothing running and no prefill scheduled: jump to the next
        // arrival (when it lies within the horizon) or report idleness.
        // (`prefilling` is necessarily empty here — any prefilling sequence
        // would have scheduled a chunk.)
        if self.active.is_empty() && self.chunks.is_empty() {
            if let Some(head) = self.ready.peek() {
                // The queue head could not be admitted into an idle system:
                // the caps can never be satisfied.
                return Err(HermesError::InvalidConfig(format!(
                    "admission caps can never admit request {} (max_batch {:?}, kv budget {:?})",
                    head, self.sim.admission.max_batch, self.sim.admission.kv_memory_bytes
                )));
            }
            if self.next_arrival < self.requests.len() {
                let arrival = self.requests[self.next_arrival].arrival;
                if arrival <= horizon {
                    self.clock = self.clock.max(arrival);
                    return Ok(BoundaryOutcome::Jumped);
                }
            }
            return Ok(BoundaryOutcome::Idle);
        }

        // 5.5 Paged growth: a sequence whose held blocks no longer cover
        // its context plus the token this step decodes takes one more
        // block. Admission granted every sequence a write slot, so a
        // grower has always decoded at least one token since it was
        // (re)admitted — growth evictions therefore always follow real
        // progress and cannot livelock. Growers take their block in
        // scheduling-rank order; when the pool is full, each evicts the
        // worst strictly lower-ranked active victim — or itself, when none
        // exists (it cannot demand capacity from equal- or better-ranked
        // work).
        if self.paged_block_tokens.is_some() {
            let growers: Vec<usize> = {
                // hermes-lint: allow(D3, reason = "the pool exists exactly when paged_block_tokens is set, checked by the enclosing guard")
                let pool = self.pool.as_ref().expect("paged pool");
                let active = &self.active;
                let covered = &self.covered;
                let step = self.step;
                active
                    .by_rank
                    .iter()
                    .map(|&(_, idx)| idx)
                    .filter(|&idx| {
                        // hermes-lint: allow(D3, reason = "by_rank only indexes active slots, whose info is always populated")
                        let info = active.info[idx].as_ref().expect("rank index is active");
                        let context = (info.shift + step as i64) as usize;
                        pool.held(idx) < pool.blocks_for_tokens(context + 1 - covered[idx])
                    })
                    .collect()
            };
            for grower in growers {
                // An earlier grower may have evicted this one.
                if !self.active.contains(grower) {
                    continue;
                }
                // hermes-lint: allow(D3, reason = "the pool exists exactly when paged_block_tokens is set, checked by the enclosing guard")
                if self.pool.as_ref().expect("paged pool").fits(1) {
                    // hermes-lint: allow(D3, reason = "the pool exists exactly when paged_block_tokens is set, checked by the enclosing guard")
                    self.pool.as_mut().expect("paged pool").grow(grower);
                    continue;
                }
                // Unpinned cache blocks are reclaimed before any sequence
                // is preempted for a grower's block.
                if let Some(cache) = self.cache.as_mut() {
                    // hermes-lint: allow(D3, reason = "the pool exists exactly when paged_block_tokens is set, checked by the enclosing guard")
                    let p = self.pool.as_mut().expect("paged pool");
                    let cap = p.capacity_blocks().unwrap_or(u64::MAX);
                    let shortfall = (p.used_blocks() + 1).saturating_sub(cap);
                    let freed = cache.evict_for(shortfall);
                    p.surrender_blocks(&freed);
                    if p.fits(1) {
                        p.grow(grower);
                        continue;
                    }
                }
                let victim = self.active.victims_outranking(self.ranks[grower]).next();
                match victim {
                    Some(victim) => {
                        self.evict_victim(victim);
                        // hermes-lint: allow(D3, reason = "the pool exists exactly when paged_block_tokens is set, checked by the enclosing guard")
                        self.pool.as_mut().expect("paged pool").grow(grower);
                    }
                    None => self.evict_victim(grower),
                }
            }
            // Sample pool usage for the utilization/fragmentation stats:
            // held blocks vs. the context tokens stored in them (active
            // contexts before this step's token, plus the full targets of
            // chunk-prefilling sequences, whose blocks are held up front).
            // Covered runs are stored once, in the cache's resident blocks,
            // so they are subtracted from the active contexts and counted
            // through the cache instead.
            // hermes-lint: allow(D3, reason = "the pool exists exactly when paged_block_tokens is set, checked by the enclosing guard")
            let pool_ref = self.pool.as_ref().expect("paged pool");
            self.kv_steps += 1;
            self.kv_block_steps += pool_ref.used_blocks();
            let active_tokens: u64 = self
                .active
                .groups
                .iter()
                .map(|(&shift, &count)| (shift + self.step as i64) as u64 * count as u64)
                .sum();
            self.kv_used_token_steps += active_tokens - self.active_covered_tokens
                + self.prefill_target_tokens as u64
                + self.cache.as_ref().map_or(0, |c| c.resident_tokens());
        }

        // 6. One shared step over the current batch composition, with any
        // scheduled prefill chunks piggybacked on it. The chunk-free path
        // prices through `decode_cost` directly, so stall-the-world
        // reproduces the closed-loop costs bitwise. The composition comes
        // straight off the active set's group index — O(distinct context
        // lengths), not O(batch).
        let batch = self.active.batch_state(self.step);
        let outcome = if self.chunks.is_empty() {
            self.plan.cost.decode_cost(&batch)
        } else {
            self.plan.cost.chunked_step_cost(&self.chunks, &batch)
        };
        self.breakdown = self.breakdown.merged(&outcome.latency);
        self.imbalance_sum += outcome.imbalance_sum;
        self.imbalance_samples += outcome.imbalance_samples;
        self.clock += outcome.latency.total();
        self.generated_tokens += self.active.len();
        self.step += 1;
        // First tokens land before completions so a single-token request
        // gets `first_token == completed`, exactly as the per-sequence walk
        // stamped them. A pending joiner evicted before its first step is
        // simply dropped here (still unstamped) and re-queued on rejoin.
        for i in 0..self.pending_first_token.len() {
            let idx = self.pending_first_token[i];
            if self.active.contains(idx) {
                self.records[idx].first_token = self.clock;
            }
        }
        self.pending_first_token.clear();
        let mut finished: Vec<(usize, ActiveInfo)> = Vec::new();
        self.active
            .drain_finished(self.step, |idx, info| finished.push((idx, info)));
        for (idx, info) in finished {
            self.records[idx].completed = self.clock;
            self.completed += 1;
            match self.pool.as_mut() {
                Some(pool) => {
                    pool.release(idx);
                }
                None => self.active_kv_bytes -= info.kv_bytes,
            }
            self.generated[idx] += (self.step - info.join_step) as usize;
            // The covered run outlives the request: releasing the lease
            // leaves the prefix resident for later arrivals, reclaimable
            // only under pressure.
            self.active_covered_tokens -= self.covered[idx] as u64;
            if let (Some(cache), Some(l)) = (self.cache.as_mut(), self.lease[idx].take()) {
                cache.release(l);
            }
        }

        // 7. Prompts that completed this step join the decode batch at the
        // next token boundary. Only the sequences that received a chunk
        // this boundary — the first `chunks.len()` entries, since chunks
        // are handed out FCFS from the front — can have newly completed,
        // so the scan stops there instead of walking the whole set.
        let mut i = 0;
        let mut touched = self.chunks.len().min(self.prefilling.len());
        while i < touched {
            if self.prefilling[i].done == self.prefilling[i].target {
                touched -= 1;
                let seq = self.prefilling.remove(i);
                self.prefill_target_tokens -= seq.target;
                let request = &self.requests[seq.idx];
                self.active_covered_tokens += self.covered[seq.idx] as u64;
                self.active.join(
                    seq.idx,
                    seq.target + self.reused[seq.idx],
                    request.gen_len - self.generated[seq.idx],
                    if self.pool.is_some() {
                        0
                    } else {
                        self.kv_bytes_per_request[seq.idx]
                    },
                    self.ranks[seq.idx],
                    self.step,
                );
                if self.generated[seq.idx] == 0 {
                    self.pending_first_token.push(seq.idx);
                }
            } else {
                i += 1;
            }
        }
        Ok(BoundaryOutcome::Worked)
    }
}
