//! The test suite of the simulator module, split out so the module
//! itself stays navigable; compiled back in via `#[path]` as
//! `simulator::tests`, so `super::*` still resolves to the simulator.

use super::*;
use crate::scheduler::request_kv_bytes;
use hermes_core::{DistributionStats, RequestClass, RequestLength};
use hermes_model::ModelId;

fn template() -> Workload {
    let mut w = Workload::paper_default(ModelId::Opt13B);
    w.prompt_len = 32;
    w.gen_len = 8;
    w
}

fn config() -> SystemConfig {
    SystemConfig::paper_default()
}

fn request(id: usize, arrival: f64, prompt_len: usize, gen_len: usize) -> ServingRequest {
    ServingRequest {
        id,
        arrival,
        prompt_len,
        gen_len,
        class: RequestClass::default(),
        prefix: Vec::new(),
    }
}

/// Regression for the re-validation hole: a sampled request with a
/// larger prompt but *smaller total* than the template (e.g. template
/// 128+128, request 200+8) was never re-validated, because the old code
/// only re-planned the request maximizing `prompt_len + gen_len` and
/// only when that sum exceeded the template's. The max-prompt request
/// must now produce a re-validation bound of its own.
#[test]
fn worst_case_bounds_cover_larger_prompt_with_smaller_total() {
    let template = Workload::paper_default(ModelId::Opt13B); // 128 + 128
    let requests = vec![request(0, 0.0, 200, 8)];
    let bounds = worst_case_bounds(&template, &requests);
    assert_eq!(bounds.len(), 1, "max-prompt request must be re-validated");
    assert_eq!(bounds[0].prompt_len, 200);
    assert_eq!(bounds[0].gen_len, 8);
}

#[test]
fn worst_case_bounds_cover_both_extremes_and_dedupe() {
    let template = Workload::paper_default(ModelId::Opt13B); // 128 + 128
                                                             // Distinct max-prompt (200+8) and max-total (100+200) requests:
                                                             // both must be re-validated.
    let requests = vec![
        request(0, 0.0, 200, 8),
        request(1, 0.0, 100, 200),
        request(2, 0.0, 64, 64),
    ];
    let mut pairs: Vec<(usize, usize)> = worst_case_bounds(&template, &requests)
        .iter()
        .map(|b| (b.prompt_len, b.gen_len))
        .collect();
    pairs.sort_unstable();
    assert_eq!(pairs, vec![(100, 200), (200, 8)]);

    // One request embodying both extremes yields a single bound.
    let one = vec![request(0, 0.0, 300, 300)];
    assert_eq!(worst_case_bounds(&template, &one).len(), 1);

    // Requests within the template need no re-validation at all.
    let covered = vec![request(0, 0.0, 64, 64), request(1, 0.0, 128, 128)];
    assert!(worst_case_bounds(&template, &covered).is_empty());
    assert!(worst_case_bounds(&template, &[]).is_empty());
}

#[test]
fn all_at_once_continuous_and_static_agree_without_caps() {
    // With every request present at time zero and no caps, both
    // policies admit everything immediately and run the same batch.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
    let continuous = simulate(SystemKind::hermes(), &config(), &sim).unwrap();
    let static_ = simulate(
        SystemKind::hermes(),
        &config(),
        &sim.clone().with_policy(BatchingPolicy::Static),
    )
    .unwrap();
    assert_eq!(continuous.records, static_.records);
    assert!((continuous.report.makespan - static_.report.makespan).abs() < 1e-12);
}

#[test]
fn max_batch_cap_limits_concurrency() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 6)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(2));
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    // FCFS: requests finish in waves of two; later waves queue longer.
    let records = &outcome.records;
    assert!(records[0].queue_delay() < 1e-12);
    assert!(records[2].queue_delay() > 0.0);
    assert!(records[4].queue_delay() > records[2].queue_delay());
    assert_eq!(outcome.report.completed, 6);
}

#[test]
fn impossible_caps_are_reported() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2)
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(1));
    assert!(matches!(
        simulate(SystemKind::hermes_base(), &config(), &sim),
        Err(HermesError::InvalidConfig(_))
    ));
}

#[test]
fn empty_simulations_finish_at_time_zero() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 0);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.makespan, 0.0);
    assert_eq!(outcome.report.generated_tokens, 0);
    assert!(outcome.records.is_empty());
}

#[test]
fn idle_gaps_jump_the_clock_to_the_next_arrival() {
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1000.0],
        },
        2,
    );
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    // The second request starts fresh after a long idle gap, so its
    // queueing delay is zero and the makespan exceeds the gap.
    assert!(outcome.records[1].queue_delay() < 1e-9);
    assert!(outcome.report.makespan > 1000.0);
}

#[test]
fn chunked_prefill_reproduces_total_work_and_generates_everything() {
    // Chunk sizes that do and do not divide the prompt length, budgets
    // above and below the chunk size: every variant completes all
    // requests and generates every token.
    let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.5 }, 6);
    for (chunk_tokens, budget) in [(8, 16), (5, 5), (7, 3), (64, 64)] {
        let outcome = simulate(
            SystemKind::hermes_base(),
            &config(),
            &sim.clone().with_prefill(PrefillPolicy::Chunked {
                chunk_tokens,
                budget,
            }),
        )
        .unwrap();
        assert_eq!(outcome.report.completed, 6, "chunk {chunk_tokens}");
        assert_eq!(
            outcome.report.generated_tokens,
            6 * 8,
            "chunk {chunk_tokens}"
        );
        for r in &outcome.records {
            assert!(r.arrival <= r.admitted, "chunk {chunk_tokens}");
            assert!(r.admitted < r.first_token, "chunk {chunk_tokens}");
            assert!(r.first_token <= r.completed, "chunk {chunk_tokens}");
        }
    }
}

#[test]
fn chunked_prefill_amortizes_to_the_stalled_prefill_total() {
    // One request, chunked into 8-token slices: the default cost
    // composition pro-rates the one-shot prefill cost over the chunks,
    // so the total prefill seconds match stall-the-world exactly.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1);
    let stalled = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let chunked = simulate(
        SystemKind::hermes_base(),
        &config(),
        &sim.clone().with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 8,
        }),
    )
    .unwrap();
    assert!(
        (chunked.report.breakdown.prefill - stalled.report.breakdown.prefill).abs() < 1e-9,
        "chunked prefill total {} vs stalled {}",
        chunked.report.breakdown.prefill,
        stalled.report.breakdown.prefill
    );
    // The lone request's own TTFT is delayed by chunking (its prompt
    // spreads over several boundaries), never improved.
    assert!(chunked.records[0].ttft() >= stalled.records[0].ttft() - 1e-12);
}

#[test]
fn lockstep_chunked_groups_amortize_to_the_stalled_group_total() {
    // Four same-length prompts admitted at one boundary: stall-the-world
    // prefills them as one batched group. With a budget wide enough for
    // all four to advance each boundary, their co-scheduled chunks share
    // a batched pass per step and the total prefill matches exactly.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
    let stalled = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let chunked = simulate(
        SystemKind::hermes_base(),
        &config(),
        &sim.clone().with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 32,
        }),
    )
    .unwrap();
    assert!(
        (chunked.report.breakdown.prefill - stalled.report.breakdown.prefill).abs() < 1e-9,
        "lockstep chunked prefill total {} vs stalled group total {}",
        chunked.report.breakdown.prefill,
        stalled.report.breakdown.prefill
    );
    assert_eq!(chunked.report.completed, 4);
}

#[test]
fn heterogeneous_lengths_thread_into_records_and_kv_accounting() {
    let lengths = vec![
        RequestLength {
            prompt_len: 16,
            gen_len: 4,
        },
        RequestLength {
            prompt_len: 48,
            gen_len: 12,
        },
        RequestLength {
            prompt_len: 16,
            gen_len: 1,
        },
    ];
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3).with_lengths(
        LengthDistribution::Trace {
            lengths: lengths.clone(),
        },
    );
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.generated_tokens, 4 + 12 + 1);
    for (r, l) in outcome.records.iter().zip(&lengths) {
        assert_eq!(r.prompt_len, l.prompt_len);
        assert_eq!(r.gen_len, l.gen_len);
    }
    // The longer request decodes more tokens, so it finishes last.
    assert!(outcome.records[1].completed > outcome.records[0].completed);
}

#[test]
fn same_boundary_groups_stamp_admission_when_their_prefill_starts() {
    // Two prompt-length groups admitted at the same boundary: the second
    // group's prefill only starts after the first group's pass, and its
    // queue delay must say so.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2).with_lengths(
        LengthDistribution::Trace {
            lengths: vec![
                RequestLength {
                    prompt_len: 16,
                    gen_len: 4,
                },
                RequestLength {
                    prompt_len: 48,
                    gen_len: 4,
                },
            ],
        },
    );
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let [first, second] = &outcome.records[..] else {
        panic!("expected two records");
    };
    assert!(first.queue_delay() < 1e-12);
    assert!(
        second.admitted > first.admitted,
        "second group admitted at {} but first at {}",
        second.admitted,
        first.admitted
    );
    // The gap is exactly the first group's prefill pass.
    assert!(second.queue_delay() > 0.0);
}

#[test]
fn single_token_requests_are_excluded_from_tpot() {
    let single = LengthDistribution::Trace {
        lengths: vec![
            RequestLength {
                prompt_len: 32,
                gen_len: 1,
            };
            3
        ],
    };
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3)
        .with_lengths(single.clone());
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    // All requests are single-token: the TPOT sample set is empty, not
    // a pile of zeros.
    assert_eq!(outcome.report.tpot, DistributionStats::default());
    assert!(outcome.report.ttft.mean > 0.0);
    assert!(outcome.report.e2e.mean > 0.0);

    // Mixing in multi-token requests: the TPOT percentiles reflect only
    // them (no zero samples dragging the median down).
    let mixed = LengthDistribution::Trace {
        lengths: vec![
            RequestLength {
                prompt_len: 32,
                gen_len: 1,
            },
            RequestLength {
                prompt_len: 32,
                gen_len: 8,
            },
            RequestLength {
                prompt_len: 32,
                gen_len: 1,
            },
        ],
    };
    let outcome = simulate(
        SystemKind::hermes_base(),
        &config(),
        &ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3).with_lengths(mixed),
    )
    .unwrap();
    assert!(
        outcome.report.tpot.p50 > 0.0,
        "p50 TPOT {} polluted by single-token zeros",
        outcome.report.tpot.p50
    );
    assert!(outcome.report.tpot.p50 <= outcome.report.tpot.max);
}

#[test]
fn offered_rps_is_empirical_for_traces_and_spec_for_poisson() {
    let trace = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1.0, 2.0, 3.0, 4.0],
        },
        5,
    );
    let outcome = simulate(SystemKind::hermes_base(), &config(), &trace).unwrap();
    // 5 arrivals over a 4-second span: 1 request/s.
    assert!((outcome.report.offered_rps - 1.0).abs() < 1e-12);

    let poisson = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.5 }, 4);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &poisson).unwrap();
    assert_eq!(outcome.report.offered_rps, 2.5);

    // All-at-once has no arrival span; the empirical rate stays zero.
    let all = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &all).unwrap();
    assert_eq!(outcome.report.offered_rps, 0.0);
}

#[test]
fn oversized_sampled_lengths_fail_memory_validation() {
    // The template fits, but the sampled request's KV footprint cannot:
    // the simulator must propagate the engine's memory check instead of
    // silently producing a report.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1).with_lengths(
        LengthDistribution::Trace {
            lengths: vec![RequestLength {
                prompt_len: 500_000_000,
                gen_len: 8,
            }],
        },
    );
    assert!(matches!(
        simulate(SystemKind::hermes_base(), &config(), &sim),
        Err(HermesError::InsufficientMemory { .. })
    ));
}

/// KV budget that fits one template request but not two.
fn one_seat_kv_cap() -> u64 {
    let per_request = request_kv_bytes(&template(), 32, 8);
    per_request * 3 / 2
}

/// KV budget that fits exactly two template requests but not three.
fn two_seat_kv_cap() -> u64 {
    request_kv_bytes(&template(), 32, 8) * 2
}

#[test]
fn priority_preemption_evicts_the_lower_tier_and_everyone_completes() {
    // Request 0 (tier 2) occupies the only KV seat; request 1 (tier 0)
    // arrives mid-run, evicts it, runs to completion, then request 0
    // resumes with recompute. Both prefill policies must agree on the
    // lifecycle accounting.
    for prefill in [
        PrefillPolicy::StallTheWorld,
        PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 8,
        },
    ] {
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9],
            },
            2,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(one_seat_kv_cap()))
        .with_classes(PrioritySpec::Trace {
            classes: vec![RequestClass::new(2), RequestClass::new(0)],
        })
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill)
        .with_prefill(prefill);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let name = prefill.name();

        assert_eq!(outcome.report.completed, 2, "{name}");
        assert_eq!(
            outcome.report.generated_tokens, 16,
            "{name}: every token generated once"
        );
        assert_eq!(outcome.report.preemptions, 1, "{name}");
        assert_eq!(outcome.records[0].preemptions, 1, "{name}");
        assert_eq!(outcome.records[1].preemptions, 0, "{name}");
        // The high-priority request overtakes: it completes first even
        // though the low-priority one started first.
        assert!(
            outcome.records[1].completed < outcome.records[0].completed,
            "{name}: high class completed {} vs low {}",
            outcome.records[1].completed,
            outcome.records[0].completed
        );
        // Lifecycle stays ordered through the eviction.
        for r in &outcome.records {
            assert!(r.arrival <= r.admitted, "{name}");
            assert!(r.admitted < r.first_token, "{name}");
            assert!(r.first_token <= r.completed, "{name}");
        }
        // Per-class accounting: the preemption is charged to tier 2.
        assert_eq!(outcome.report.class(0).unwrap().preemptions, 0, "{name}");
        assert_eq!(outcome.report.class(2).unwrap().preemptions, 1, "{name}");
        assert_eq!(outcome.report.scheduling, "priority", "{name}");
        assert_eq!(
            outcome.report.preemption_policy, "evict-and-refill",
            "{name}"
        );

        // Restart-with-recompute is paid in prefill seconds: the same
        // scenario without preemption does strictly less prefill work.
        let unpreempted = simulate(
            SystemKind::hermes_base(),
            &config(),
            &sim.clone().with_preemption(PreemptionPolicy::None),
        )
        .unwrap();
        assert_eq!(unpreempted.report.preemptions, 0, "{name}");
        assert!(
            outcome.report.breakdown.prefill > unpreempted.report.breakdown.prefill,
            "{name}: preemptive prefill {} vs unpreempted {}",
            outcome.report.breakdown.prefill,
            unpreempted.report.breakdown.prefill
        );
        // The point of evicting: the high-priority request's TTFT
        // strictly improves over waiting for the seat.
        assert!(
            outcome.records[1].ttft() < unpreempted.records[1].ttft(),
            "{name}: preemptive TTFT {} vs unpreempted {}",
            outcome.records[1].ttft(),
            unpreempted.records[1].ttft()
        );
    }
}

#[test]
fn fcfs_never_preempts_even_with_eviction_enabled() {
    // Under FCFS no request outranks another, so EvictAndRefill is
    // bitwise inert.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-9],
        },
        2,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(one_seat_kv_cap()))
    .with_classes(PrioritySpec::Trace {
        classes: vec![RequestClass::new(2), RequestClass::new(0)],
    })
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    let preemptive = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let plain = simulate(
        SystemKind::hermes_base(),
        &config(),
        &sim.clone().with_preemption(PreemptionPolicy::None),
    )
    .unwrap();
    assert_eq!(preemptive.report.preemptions, 0);
    assert_eq!(preemptive.records, plain.records);
}

#[test]
fn priority_orders_the_ready_queue_with_fcfs_within_a_tier() {
    // Three queued requests, one seat: the tier-0 request jumps the
    // queue, and the two tier-1 requests keep their arrival order.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
        .with_classes(PrioritySpec::Trace {
            classes: vec![
                RequestClass::new(1),
                RequestClass::new(0),
                RequestClass::new(1),
            ],
        })
        .with_scheduling(SchedulingPolicy::Priority);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let [a, b, c] = &outcome.records[..] else {
        panic!("expected three records");
    };
    assert!(b.admitted < a.admitted, "tier 0 admitted first");
    assert!(a.admitted < c.admitted, "FCFS within tier 1");
}

#[test]
fn edf_orders_by_absolute_deadline_with_best_effort_last() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
        .with_classes(PrioritySpec::Trace {
            classes: vec![
                RequestClass::new(0).with_ttft_deadline(100.0),
                RequestClass::new(0).with_ttft_deadline(1.0),
                RequestClass::new(0),
            ],
        })
        .with_scheduling(SchedulingPolicy::Edf);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let [loose, tight, best_effort] = &outcome.records[..] else {
        panic!("expected three records");
    };
    assert!(tight.admitted < loose.admitted, "tightest deadline first");
    assert!(loose.admitted < best_effort.admitted, "best effort last");
}

#[test]
fn slo_attainment_reflects_met_and_missed_deadlines() {
    // Two deadline-carrying requests sharing one seat: the first meets
    // its generous deadline, the second misses an impossible one.
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
        .with_classes(PrioritySpec::Trace {
            classes: vec![
                RequestClass::new(0).with_ttft_deadline(1e9),
                RequestClass::new(0).with_ttft_deadline(1e-12),
            ],
        });
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.records[0].met_ttft_deadline(), Some(true));
    assert_eq!(outcome.records[1].met_ttft_deadline(), Some(false));
    assert!((outcome.report.slo_attainment().unwrap() - 0.5).abs() < 1e-12);
    let class = outcome.report.class(0).unwrap();
    assert_eq!(class.deadline_requests, 2);
    assert_eq!(class.deadline_met, 1);

    // Class-free scenarios report no attainment at all.
    let plain = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &plain).unwrap();
    assert_eq!(outcome.report.slo_attainment(), None);
    assert_eq!(outcome.report.per_class.len(), 1);
    assert_eq!(outcome.report.preemptions, 0);
}

#[test]
fn equal_rank_ready_requests_keep_arrival_order() {
    // Coverage audit before the heap rewrite: equal primary ranks must
    // never reorder — admission is FCFS inside a priority tier and
    // inside an equal EDF deadline, even through a one-seat bottleneck.
    for (scheduling, classes) in [
        (
            SchedulingPolicy::Priority,
            PrioritySpec::Trace {
                classes: vec![RequestClass::new(1); 4],
            },
        ),
        (
            SchedulingPolicy::Edf,
            PrioritySpec::Trace {
                classes: vec![RequestClass::new(0).with_ttft_deadline(5.0); 4],
            },
        ),
    ] {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
            .with_classes(classes)
            .with_scheduling(scheduling);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        for pair in outcome.records.windows(2) {
            assert!(
                pair[0].admitted < pair[1].admitted,
                "{}: equal ranks must admit in arrival order",
                scheduling.name()
            );
        }
    }
}

#[test]
fn eviction_picks_the_latest_arrival_within_the_worst_tier() {
    // Two equal-tier sequences hold both seats; a tier-0 waiter evicts
    // exactly one victim. The tie-break inside the worst rank is
    // latest-arrival-first, so request 1 — not request 0 — must pay.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-9, 0.2],
        },
        3,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()))
    .with_classes(PrioritySpec::Trace {
        classes: vec![
            RequestClass::new(2),
            RequestClass::new(2),
            RequestClass::new(0),
        ],
    })
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.completed, 3);
    assert_eq!(outcome.report.preemptions, 1);
    assert_eq!(
        outcome.records[0].preemptions, 0,
        "earlier arrival within the tier must be spared"
    );
    assert_eq!(
        outcome.records[1].preemptions, 1,
        "latest arrival within the worst tier is evicted first"
    );
    assert_eq!(outcome.records[2].preemptions, 0);
}

#[test]
fn eviction_prefers_worse_tiers_over_later_arrivals() {
    // A tier-2 sequence arrived *before* a tier-1 sequence; a tier-0
    // waiter needs one seat. Rank dominates arrival order: the tier-2
    // sequence is evicted even though it is the older one.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-9, 0.2],
        },
        3,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()))
    .with_classes(PrioritySpec::Trace {
        classes: vec![
            RequestClass::new(2),
            RequestClass::new(1),
            RequestClass::new(0),
        ],
    })
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.preemptions, 1);
    assert_eq!(outcome.records[0].preemptions, 1, "worst tier pays first");
    assert_eq!(outcome.records[1].preemptions, 0);
}

#[test]
fn eviction_never_strikes_within_the_waiters_own_tier() {
    // Both seats held by tier-1 sequences and a tier-1 waiter blocked:
    // preemption compares primary ranks strictly, so nothing is evicted
    // and the waiter queues until a seat frees naturally.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-9, 2e-9],
        },
        3,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()))
    .with_classes(PrioritySpec::Trace {
        classes: vec![RequestClass::new(1); 3],
    })
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.preemptions, 0);
    assert_eq!(outcome.report.completed, 3);
    assert!(
        outcome.records[2].queue_delay() > 0.0,
        "the same-tier waiter queues instead of evicting"
    );
}

#[test]
fn multi_victim_eviction_frees_exactly_enough_seats() {
    // The waiter needs two seats' worth of KV while two single-seat
    // sequences hold the pool: both are evicted (smallest sufficient
    // victim prefix), the big request runs, and the victims resume.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-9, 0.2],
        },
        3,
    )
    .with_lengths(LengthDistribution::Trace {
        lengths: vec![
            RequestLength {
                prompt_len: 32,
                gen_len: 8,
            },
            RequestLength {
                prompt_len: 32,
                gen_len: 8,
            },
            RequestLength {
                prompt_len: 64,
                gen_len: 16,
            },
        ],
    })
    .with_admission(
        // 2.5 single seats: fits both small requests, or the double-
        // sized one alone.
        AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()),
    )
    .with_classes(PrioritySpec::Trace {
        classes: vec![
            RequestClass::new(2),
            RequestClass::new(2),
            RequestClass::new(0),
        ],
    })
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.completed, 3);
    assert_eq!(outcome.report.preemptions, 2, "both seat-holders evicted");
    assert_eq!(outcome.records[0].preemptions, 1);
    assert_eq!(outcome.records[1].preemptions, 1);
    assert_eq!(outcome.report.generated_tokens, 8 + 8 + 16);
    assert!(
        outcome.records[2].completed < outcome.records[0].completed,
        "the tier-0 request overtakes both victims"
    );
}

#[test]
fn empty_ready_queue_boundaries_admit_mid_decode_arrivals() {
    // The ready queue empties after the first admission, the system
    // keeps decoding through empty-queue boundaries, and a mid-decode
    // arrival is admitted at the next token boundary without disturbing
    // the running sequence.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-6],
        },
        2,
    );
    let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    assert_eq!(outcome.report.completed, 2);
    // The joiner was admitted while request 0 was mid-flight: strictly
    // after its own arrival (a boundary had to come up) and strictly
    // before request 0 completed.
    assert!(outcome.records[1].admitted >= outcome.records[1].arrival);
    assert!(outcome.records[1].admitted < outcome.records[0].completed);
    assert_eq!(outcome.report.preemptions, 0);
}

#[test]
fn invalid_prefill_policies_are_rejected() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1).with_prefill(
        PrefillPolicy::Chunked {
            chunk_tokens: 0,
            budget: 4,
        },
    );
    assert!(matches!(
        simulate(SystemKind::hermes_base(), &config(), &sim),
        Err(HermesError::InvalidConfig(_))
    ));
}

#[test]
fn unbounded_paged_accounting_reproduces_reserve_bitwise() {
    // With no KV budget the paged pool never constrains admission, so
    // switching the accounting mode must not move a single clock stamp
    // — the pool only adds its usage report.
    let base = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.0 }, 10)
        .with_arrival_seed(17)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(3))
        .with_lengths(LengthDistribution::Uniform {
            prompt_min: 8,
            prompt_max: 40,
            gen_min: 1,
            gen_max: 10,
        })
        .with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 16,
        });
    let reserve = simulate(SystemKind::hermes_base(), &config(), &base).unwrap();
    let paged = simulate(
        SystemKind::hermes_base(),
        &config(),
        &base.clone().with_admission(
            AdmissionConfig::unlimited()
                .with_max_batch(3)
                .with_paged_kv(16),
        ),
    )
    .unwrap();
    assert_eq!(paged.records, reserve.records);
    assert!(reserve.report.kv.is_none());
    let kv = paged.report.kv.clone().expect("paged accounting reports");
    assert_eq!(kv.block_tokens, 16);
    assert_eq!(kv.capacity_blocks, None);
    assert!(kv.peak_blocks > 0);
    assert!((0.0..=1.0).contains(&kv.fragmentation), "{kv:?}");
    let mut stripped = paged.report.clone();
    stripped.kv = None;
    assert_eq!(stripped, reserve.report);
}

#[test]
fn paged_admission_packs_more_requests_into_the_same_budget() {
    // Six decode-heavy requests (prompt 8, gen 32) under a KV budget
    // sized for two worst-case reservations. Reserve admission charges
    // the full 40-token footprint up front and seats two; paged
    // admission charges only the blocks the context actually needs
    // (9 tokens at admission) and seats all six, so queueing delay
    // collapses.
    let mut w = template();
    w.prompt_len = 8;
    w.gen_len = 32;
    let budget = request_kv_bytes(&w, 8, 32) * 2;
    let base = ServingSimulation::new(w, ArrivalProcess::AllAtOnce, 6)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
    let reserve = simulate(
        SystemKind::hermes_base(),
        &config(),
        &base
            .clone()
            .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(budget)),
    )
    .unwrap();
    let paged = simulate(
        SystemKind::hermes_base(),
        &config(),
        &base.clone().with_admission(
            AdmissionConfig::unlimited()
                .with_kv_memory_bytes(budget)
                .with_paged_kv(4),
        ),
    )
    .unwrap();
    assert_eq!(reserve.report.completed, 6);
    assert_eq!(paged.report.completed, 6);
    assert!(
        paged.report.queue_delay.mean < reserve.report.queue_delay.mean,
        "paged queue delay {} vs reserve {}",
        paged.report.queue_delay.mean,
        reserve.report.queue_delay.mean
    );
    let kv = paged.report.kv.as_ref().expect("paged pool report");
    assert!(kv.utilization.is_some() && kv.peak_utilization.is_some());
    assert!(kv.peak_utilization.unwrap() <= 1.0 + 1e-12, "{kv:?}");
}

#[test]
fn swap_out_resumes_without_recompute() {
    // Same single-seat preemption scenario as the EvictAndRefill
    // lifecycle test: tier 0 evicts tier 2 mid-decode. Under SwapOut
    // the victim's pages move to the swap tier and back instead of
    // being recomputed, so the swap run does strictly less prefill
    // work, pays for it in communication seconds, and still generates
    // every token exactly once.
    let sim = ServingSimulation::new(
        template(),
        ArrivalProcess::Trace {
            times: vec![0.0, 1e-9],
        },
        2,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(one_seat_kv_cap()))
    .with_classes(PrioritySpec::Trace {
        classes: vec![RequestClass::new(2), RequestClass::new(0)],
    })
    .with_scheduling(SchedulingPolicy::Priority)
    .with_preemption(PreemptionPolicy::EvictAndRefill);
    let evicted = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
    let swapped = simulate(
        SystemKind::hermes_base(),
        &config(),
        &sim.clone().with_preemption(PreemptionPolicy::SwapOut),
    )
    .unwrap();

    assert_eq!(swapped.report.completed, 2);
    assert_eq!(swapped.report.generated_tokens, 16);
    assert_eq!(swapped.report.preemptions, 1);
    assert_eq!(swapped.records[0].preemptions, 1);
    assert_eq!(swapped.report.preemption_policy, "swap-out");
    // No recompute: the swap run's prefill work is strictly below the
    // evict-and-refill run's, which re-prefilled the victim.
    assert!(
        swapped.report.breakdown.prefill < evicted.report.breakdown.prefill,
        "swap prefill {} vs evict {}",
        swapped.report.breakdown.prefill,
        evicted.report.breakdown.prefill
    );
    let swap = swapped.report.swap.clone().expect("swap tier report");
    assert_eq!(swap.swap_outs, 1);
    assert_eq!(swap.swap_ins, 1);
    assert_eq!(swap.swapped_out_bytes, swap.swapped_in_bytes);
    assert!(swap.swapped_out_bytes > 0);
    assert!(swap.seconds > 0.0);
    assert!(evicted.report.swap.is_none());
}

#[test]
fn bounded_paged_pool_without_preemption_is_rejected() {
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2).with_admission(
        AdmissionConfig::unlimited()
            .with_kv_memory_bytes(two_seat_kv_cap())
            .with_paged_kv(16),
    );
    match simulate(SystemKind::hermes_base(), &config(), &sim) {
        Err(HermesError::InvalidConfig(msg)) => {
            assert!(msg.contains("preemption"), "{msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn request_larger_than_the_paged_pool_is_rejected() {
    // A pool of one worst-case seat minus a block cannot ever hold
    // request 0 at full context; admitting it would guarantee an
    // eviction livelock, so validation refuses up front.
    let per_request = request_kv_bytes(&template(), 32, 8);
    let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1)
        .with_admission(
            AdmissionConfig::unlimited()
                .with_kv_memory_bytes(per_request / 2)
                .with_paged_kv(16),
        )
        .with_preemption(PreemptionPolicy::SwapOut);
    match simulate(SystemKind::hermes_base(), &config(), &sim) {
        Err(HermesError::InvalidConfig(msg)) => {
            assert!(msg.contains("KV blocks"), "{msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}
