//! Batching policies and admission control for the serving simulator.

use serde::{Deserialize, Serialize};

use hermes_core::{HermesError, Workload};

/// How the scheduler forms decode batches out of queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchingPolicy {
    /// Continuous batching: queued requests join the running batch at the
    /// next token boundary (FCFS), and finished sequences free their slot
    /// immediately.
    Continuous,
    /// Static batching: a batch is formed only when the system is idle and
    /// runs to completion before the next batch is admitted — the shape of
    /// the paper's closed-loop evaluation.
    Static,
}

impl BatchingPolicy {
    /// Display name used in [`ServingReport`](hermes_core::ServingReport)s
    /// and tables.
    pub fn name(&self) -> &'static str {
        match self {
            BatchingPolicy::Continuous => "continuous",
            BatchingPolicy::Static => "static",
        }
    }
}

/// How the scheduler prices the prompting phase of admitted requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefillPolicy {
    /// Prefill each admitted request's whole prompt before the next decode
    /// step. Simple, but every in-flight sequence absorbs the full prefill
    /// of each late joiner into its per-token latency.
    StallTheWorld,
    /// Chunked (piggybacked) prefill: prompts are split into chunks of at
    /// most `chunk_tokens` tokens, and at most `budget` prefill tokens are
    /// co-scheduled with the decode step at each token boundary
    /// (FCFS across the requests still prefilling). Decode keeps streaming
    /// while prompts trickle in, bounding the prefill slice any in-flight
    /// token absorbs.
    Chunked {
        /// Largest number of prompt tokens one request advances per token
        /// boundary.
        chunk_tokens: usize,
        /// Largest total number of prefill tokens co-scheduled per token
        /// boundary, across all prefilling requests.
        budget: usize,
    },
}

impl PrefillPolicy {
    /// Display name used in [`ServingReport`](hermes_core::ServingReport)s
    /// and tables.
    pub fn name(&self) -> &'static str {
        match self {
            PrefillPolicy::StallTheWorld => "stall-the-world",
            PrefillPolicy::Chunked { .. } => "chunked",
        }
    }

    /// Validate the policy.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidConfig`] for a chunk size or budget of
    /// zero (no prefill work could ever be scheduled).
    pub fn validate(&self) -> Result<(), HermesError> {
        if let PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        } = self
        {
            if *chunk_tokens == 0 {
                return Err(HermesError::InvalidConfig(
                    "chunked prefill chunk_tokens must be at least 1".into(),
                ));
            }
            if *budget == 0 {
                return Err(HermesError::InvalidConfig(
                    "chunked prefill budget must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }
}

/// How the scheduler orders the ready queue at every token boundary.
///
/// All orderings are total and deterministic: ties (same tier, same
/// deadline) fall back to arrival order, so FCFS order is preserved within
/// a priority tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served — arrival order, the policy of PR 3/4.
    Fcfs,
    /// Priority tiers first ([`RequestClass::priority`](hermes_core::RequestClass),
    /// 0 is most important), arrival order within a tier.
    Priority,
    /// Earliest deadline first: requests sorted by absolute TTFT deadline
    /// (`arrival + ttft_deadline`); best-effort requests (no deadline) sort
    /// after every deadline-carrying one, in arrival order.
    Edf,
    /// Prefix-affinity co-batching: requests sharing a declared prompt
    /// prefix (see [`PromptSpec`](hermes_core::PromptSpec)) are ranked by
    /// the arrival of the *first* request of their prefix group, so
    /// same-prefix ready requests are admitted together at a boundary —
    /// maximising prefix-cache reuse while the shared KV is hot. Requests
    /// declaring no prefix keep plain arrival order relative to group
    /// leaders.
    PrefixAffinity,
}

impl SchedulingPolicy {
    /// Display name used in [`ServingReport`](hermes_core::ServingReport)s
    /// and tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::Fcfs => "fcfs",
            SchedulingPolicy::Priority => "priority",
            SchedulingPolicy::Edf => "edf",
            SchedulingPolicy::PrefixAffinity => "prefix-affinity",
        }
    }
}

/// Whether the serving scheduler keeps completed prompts' prefix KV blocks
/// resident for reuse by later requests declaring the same prefix.
///
/// The cache operates over the paged KV pool (it owns block ranges), so
/// enabling it requires [`KvAccounting::Paged`]; the simulator rejects it
/// under reserve accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefixCacheMode {
    /// No caching: every admission prefills its full prompt (the behaviour
    /// of PR 3–7).
    Disabled,
    /// Radix-tree prefix cache with least-popular / least-recently-used
    /// eviction: cached blocks stay resident after their sequences complete
    /// and are returned to the pool only under allocation pressure; blocks
    /// referenced by live sequences are never evicted.
    Lru,
}

impl PrefixCacheMode {
    /// Display name used in reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            PrefixCacheMode::Disabled => "disabled",
            PrefixCacheMode::Lru => "lru",
        }
    }
}

/// What the scheduler does when the best-ranked queued request cannot be
/// admitted under the KV-memory or batch caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionPolicy {
    /// Never evict: the queue head waits for capacity to free up naturally
    /// (head-of-line blocking, the behaviour of PR 3/4).
    None,
    /// Evict strictly lower-ranked active sequences (worst-ranked first)
    /// until the queue head fits, releasing their KV reservations and
    /// requeueing them. A preempted request restarts with recompute on
    /// resume: its prompt *and* the tokens it already generated are
    /// re-prefilled (priced through the engine's prefill cost), then decode
    /// continues from where it stopped — generated tokens are never priced
    /// as decode work twice. Under [`SchedulingPolicy::Fcfs`] no request
    /// outranks another, so this policy never evicts.
    EvictAndRefill,
    /// Like [`PreemptionPolicy::EvictAndRefill`] in *who* gets evicted
    /// (strictly lower-ranked actives, worst-ranked first), but the victim's
    /// KV cache is paged out to the swap tier (host DRAM / NDP-DIMM) instead
    /// of being discarded. On resume the pages move back and decode
    /// continues exactly where it stopped — no recompute, no re-prefill.
    /// Each leg is priced through
    /// [`StepCostModel::swap_cost`](hermes_core::StepCostModel::swap_cost)
    /// on the victim's held KV bytes, so a swap costs two link transfers of
    /// real state instead of a full prompt+generated re-prefill.
    SwapOut,
}

impl PreemptionPolicy {
    /// Display name used in [`ServingReport`](hermes_core::ServingReport)s
    /// and tables.
    pub fn name(&self) -> &'static str {
        match self {
            PreemptionPolicy::None => "none",
            PreemptionPolicy::EvictAndRefill => "evict-and-refill",
            PreemptionPolicy::SwapOut => "swap-out",
        }
    }
}

/// Default tokens per KV block under paged accounting — the common
/// vLLM-style page size: small enough that a sequence wastes little of its
/// last partial block, large enough that page-table churn stays cheap.
pub const DEFAULT_BLOCK_TOKENS: usize = 16;

/// How admission charges a request against the KV-memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KvAccounting {
    /// Reserve the request's full-context (prompt + generation) KV
    /// footprint for its whole lifetime at admission — simple, but
    /// worst-case: a request holds capacity it will not touch for hundreds
    /// of decode steps (the static-preallocation anti-pattern).
    #[default]
    Reserve,
    /// Paged accounting over a [`KvPool`](crate::KvPool): a request is
    /// admitted when the blocks for its *current* context (prompt plus
    /// tokens generated so far) fit, and grows one block at a time as
    /// decoded tokens cross block boundaries. A sequence that runs out of
    /// pool mid-decode preempts a lower-ranked victim (or itself, when none
    /// exists) under the configured preemption policy, so a bounded paged
    /// pool requires a preemption policy.
    Paged {
        /// Tokens per fixed-size block.
        block_tokens: usize,
    },
}

impl KvAccounting {
    /// Display name used in reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            KvAccounting::Reserve => "reserve",
            KvAccounting::Paged { .. } => "paged",
        }
    }
}

/// Caps the admission queue enforces before letting a request join the
/// batch. `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum number of concurrently running sequences.
    pub max_batch: Option<usize>,
    /// Budget in bytes for the KV caches of all concurrently running
    /// sequences. Under [`KvAccounting::Reserve`] each request reserves its
    /// full-context KV footprint on admission; under
    /// [`KvAccounting::Paged`] the budget caps the block pool
    /// (`kv_memory_bytes / block_bytes` blocks) and requests are charged
    /// only for pages actually held.
    pub kv_memory_bytes: Option<u64>,
    /// How requests are charged against the KV budget.
    pub accounting: KvAccounting,
}

impl AdmissionConfig {
    /// No caps: every queued request is admitted at the next boundary.
    pub fn unlimited() -> Self {
        AdmissionConfig::default()
    }

    /// Cap the number of concurrently running sequences.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = Some(max_batch);
        self
    }

    /// Cap the KV-cache bytes of concurrently running sequences.
    pub fn with_kv_memory_bytes(mut self, bytes: u64) -> Self {
        self.kv_memory_bytes = Some(bytes);
        self
    }

    /// Switch to paged KV accounting with `block_tokens` tokens per block
    /// (see [`DEFAULT_BLOCK_TOKENS`] for the usual choice).
    pub fn with_paged_kv(mut self, block_tokens: usize) -> Self {
        self.accounting = KvAccounting::Paged { block_tokens };
        self
    }

    /// Validate the caps.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidConfig`] for caps that can never admit
    /// anything.
    pub fn validate(&self) -> Result<(), HermesError> {
        if self.max_batch == Some(0) {
            return Err(HermesError::InvalidConfig(
                "admission max_batch must be at least 1".into(),
            ));
        }
        // A zero KV budget can never admit anything either; without this
        // check it only surfaced as a mid-run "caps can never admit" error.
        if self.kv_memory_bytes == Some(0) {
            return Err(HermesError::InvalidConfig(
                "admission kv_memory_bytes must be at least 1".into(),
            ));
        }
        if let KvAccounting::Paged { block_tokens } = self.accounting {
            if block_tokens == 0 {
                return Err(HermesError::InvalidConfig(
                    "paged KV block_tokens must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }

    /// Whether a request with the given KV footprint may join a batch that
    /// currently runs `active` sequences holding `active_kv_bytes` of KV
    /// cache.
    pub fn admits(&self, active: usize, active_kv_bytes: u64, request_kv_bytes: u64) -> bool {
        if let Some(max_batch) = self.max_batch {
            if active >= max_batch {
                return false;
            }
        }
        if let Some(budget) = self.kv_memory_bytes {
            if active_kv_bytes + request_kv_bytes > budget {
                return false;
            }
        }
        true
    }
}

/// KV-cache bytes one request reserves for its whole lifetime: the
/// full-context (prompt + generation) footprint of a single sequence.
pub fn request_kv_bytes(template: &Workload, prompt_len: usize, gen_len: usize) -> u64 {
    template
        .model_config()
        .memory_footprint()
        .kv_cache_bytes(prompt_len + gen_len, 1)
}

/// KV-cache bytes one token of context occupies — the unit paged
/// accounting sizes its blocks in (`request_kv_bytes` is linear in the
/// context length, so this is just the one-token footprint).
pub fn token_kv_bytes(template: &Workload) -> u64 {
    request_kv_bytes(template, 1, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(BatchingPolicy::Continuous.name(), "continuous");
        assert_eq!(BatchingPolicy::Static.name(), "static");
        assert_eq!(PrefillPolicy::StallTheWorld.name(), "stall-the-world");
        assert_eq!(
            PrefillPolicy::Chunked {
                chunk_tokens: 16,
                budget: 32
            }
            .name(),
            "chunked"
        );
        assert_eq!(SchedulingPolicy::Fcfs.name(), "fcfs");
        assert_eq!(SchedulingPolicy::Priority.name(), "priority");
        assert_eq!(SchedulingPolicy::Edf.name(), "edf");
        assert_eq!(SchedulingPolicy::PrefixAffinity.name(), "prefix-affinity");
        assert_eq!(PrefixCacheMode::Disabled.name(), "disabled");
        assert_eq!(PrefixCacheMode::Lru.name(), "lru");
        assert_eq!(PreemptionPolicy::None.name(), "none");
        assert_eq!(PreemptionPolicy::EvictAndRefill.name(), "evict-and-refill");
        assert_eq!(PreemptionPolicy::SwapOut.name(), "swap-out");
        assert_eq!(KvAccounting::Reserve.name(), "reserve");
        assert_eq!(KvAccounting::Paged { block_tokens: 16 }.name(), "paged");
    }

    #[test]
    fn paged_accounting_validates_block_size() {
        assert!(matches!(
            AdmissionConfig::unlimited().with_paged_kv(0).validate(),
            Err(HermesError::InvalidConfig(_))
        ));
        AdmissionConfig::unlimited()
            .with_paged_kv(DEFAULT_BLOCK_TOKENS)
            .validate()
            .unwrap();
    }

    #[test]
    fn token_kv_bytes_is_the_linear_unit() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let unit = token_kv_bytes(&template);
        assert!(unit > 0);
        assert_eq!(request_kv_bytes(&template, 64, 64), 128 * unit);
    }

    /// Regression: a zero KV budget could never admit anything but used to
    /// pass `validate()` and only fail mid-run, unlike `max_batch == 0`
    /// which was rejected upfront. Both caps must now fail the same way.
    #[test]
    fn zero_caps_are_rejected_upfront_symmetrically() {
        for bad in [
            AdmissionConfig::unlimited().with_max_batch(0),
            AdmissionConfig::unlimited().with_kv_memory_bytes(0),
            AdmissionConfig::unlimited()
                .with_max_batch(0)
                .with_kv_memory_bytes(0),
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidConfig(_))),
                "{bad:?} should be rejected upfront"
            );
        }
        // Non-zero budgets still validate, even tiny ones.
        AdmissionConfig::unlimited()
            .with_kv_memory_bytes(1)
            .validate()
            .unwrap();
    }

    #[test]
    fn prefill_policies_validate() {
        PrefillPolicy::StallTheWorld.validate().unwrap();
        PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 8,
        }
        .validate()
        .unwrap();
        for bad in [
            PrefillPolicy::Chunked {
                chunk_tokens: 0,
                budget: 8,
            },
            PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 0,
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(HermesError::InvalidConfig(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn unlimited_admits_everything() {
        let caps = AdmissionConfig::unlimited();
        caps.validate().unwrap();
        assert!(caps.admits(10_000, u64::MAX / 2, u64::MAX / 2));
    }

    #[test]
    fn caps_are_enforced() {
        let caps = AdmissionConfig::unlimited()
            .with_max_batch(2)
            .with_kv_memory_bytes(100);
        caps.validate().unwrap();
        assert!(caps.admits(1, 50, 50));
        assert!(!caps.admits(2, 0, 10), "batch cap");
        assert!(!caps.admits(1, 60, 50), "memory cap");
        assert!(matches!(
            AdmissionConfig::unlimited().with_max_batch(0).validate(),
            Err(HermesError::InvalidConfig(_))
        ));
    }

    #[test]
    fn kv_footprint_scales_with_context() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let short = request_kv_bytes(&template, 64, 64);
        let long = request_kv_bytes(&template, 128, 128);
        assert_eq!(long, 2 * short);
        assert!(short > 0);
    }
}
