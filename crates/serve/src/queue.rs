//! Indexed priority queues for the simulator hot loop.
//!
//! The simulator orders waiting requests by a scalar *primary rank* (lower
//! is served first — a constant for FCFS, the priority tier, or the
//! absolute EDF deadline) with the arrival index breaking ties, so FCFS
//! order survives inside every rank. [`ReadyQueue`] maintains that total
//! order in a binary heap: arrivals, re-queued eviction victims and
//! admissions are all O(log n), replacing the full ready-queue re-sort the
//! old scheduler paid at every token boundary. Ranks are immutable per
//! request (tiers and absolute deadlines never change mid-run), which is
//! what makes the heap safe: an entry's key cannot decay while buffered.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduling rank with the total order of [`f64::total_cmp`], so ranks
/// are usable as ordered map/heap keys. Lower ranks are served first;
/// best-effort EDF requests carry `f64::INFINITY` and sort last.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rank(pub f64);

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The admission queue: a min-heap over `(rank, arrival index)`.
///
/// Equal inputs drain in exactly the order the old sort-based scheduler
/// produced — rank ascending, arrival index ascending within a rank — a
/// property the `ready_queue` proptests pin against a sort-based model.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    heap: BinaryHeap<Reverse<(Rank, usize)>>,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a request (a fresh arrival or a re-queued eviction victim).
    pub fn push(&mut self, rank: f64, idx: usize) {
        self.heap.push(Reverse((Rank(rank), idx)));
    }

    /// The best-ranked waiting request, if any.
    pub fn peek(&self) -> Option<usize> {
        self.heap.peek().map(|Reverse((_, idx))| *idx)
    }

    /// Remove and return the best-ranked waiting request.
    pub fn pop(&mut self) -> Option<usize> {
        self.heap.pop().map(|Reverse((_, idx))| idx)
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_by_rank_then_arrival_index() {
        let mut q = ReadyQueue::new();
        q.push(2.0, 0);
        q.push(0.0, 1);
        q.push(2.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.peek(), Some(1));
        let mut order = Vec::new();
        while let Some(idx) = q.pop() {
            order.push(idx);
        }
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn equal_ranks_preserve_arrival_order_through_interleaved_pops() {
        let mut q = ReadyQueue::new();
        q.push(1.0, 5);
        q.push(1.0, 2);
        assert_eq!(q.pop(), Some(2));
        // A re-queued victim with a later index never overtakes an equal
        // rank already waiting.
        q.push(1.0, 7);
        q.push(1.0, 3);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(7));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn infinite_ranks_sort_after_every_finite_deadline() {
        let mut q = ReadyQueue::new();
        q.push(f64::INFINITY, 0);
        q.push(1e12, 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
    }
}
