//! Property tests of the radix [`PrefixCache`](crate::prefix::PrefixCache)
//! against a flat shadow model.
//!
//! The shadow represents the cache as the set of block-aligned token runs
//! currently resident (every block on a root path contributes its full
//! path), which makes the radix tree's observable behaviour a one-liner:
//! the matched length of a lookup is its longest common run with any
//! resident path rounded down to a block, and insertion is possible exactly
//! when that common run is block-aligned. Driving both through random
//! op sequences checks the tree's splitting, pinning and cascading
//! eviction against the model, plus the bookkeeping invariants the
//! simulator relies on:
//!
//! - plan/acquire agree with the shadow on matched length and
//!   insertability, and `plan` is side-effect-free;
//! - resident block/token counters match the shadow exactly;
//! - block ids are conserved: every id handed to `insert` is either still
//!   resident or was returned by exactly one eviction, never both;
//! - leased (pinned) prefixes survive any eviction pressure;
//! - the whole op sequence is deterministic.

use std::collections::BTreeSet;

use proptest::prelude::*;

use crate::prefix::PrefixCache;

/// One step of a random cache workload.
#[derive(Debug, Clone)]
enum Op {
    /// Acquire `run` (block-truncated), insert the unmatched remainder when
    /// the plan allows it, and either release immediately or keep the lease.
    Lookup { run: Vec<u64>, keep: bool },
    /// Release the `idx % outstanding`-th outstanding lease, if any.
    Release { idx: usize },
    /// Ask eviction for `shortfall` blocks.
    Evict { shortfall: u64 },
}

/// Decode one op from a raw entropy word (the vendored proptest stub only
/// samples integer and vec ranges, so op structure is derived here).
/// Lookup runs draw tokens from a 3-symbol alphabet so lookups collide
/// constantly: shared whole blocks, sub-block divergences and full matches
/// all occur. Weights: 4/7 lookup, 2/7 release, 1/7 evict.
fn decode(raw: u64) -> Op {
    let kind = raw % 7;
    let seed = raw / 7;
    if kind < 4 {
        let len = (seed % 13) as usize;
        let keep = (seed / 13) % 2 == 1;
        // splitmix-style stream: same raw word, same run.
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let run = (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (x >> 33) % 3
            })
            .collect();
        Op::Lookup { run, keep }
    } else if kind < 6 {
        Op::Release {
            idx: (seed % 8) as usize,
        }
    } else {
        Op::Evict {
            shortfall: seed % 6,
        }
    }
}

/// The flat shadow: every block-aligned prefix of every resident run.
struct Shadow {
    block_tokens: usize,
    /// All block-aligned root paths currently resident, one entry per
    /// resident block.
    paths: BTreeSet<Vec<u64>>,
    /// Every full run ever inserted — the candidate set used to resync
    /// `paths` after an eviction (eviction only ever removes content).
    ever_inserted: BTreeSet<Vec<u64>>,
}

impl Shadow {
    fn new(block_tokens: usize) -> Self {
        Shadow {
            block_tokens,
            paths: BTreeSet::new(),
            ever_inserted: BTreeSet::new(),
        }
    }

    /// Longest common token run between `lookup` and any resident path.
    fn common(&self, lookup: &[u64]) -> usize {
        self.paths
            .iter()
            .map(|p| {
                lookup
                    .iter()
                    .zip(p.iter())
                    .take_while(|(a, b)| a == b)
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    fn matched(&self, lookup: &[u64]) -> usize {
        self.common(lookup) / self.block_tokens * self.block_tokens
    }

    fn can_insert(&self, lookup: &[u64]) -> bool {
        self.common(lookup).is_multiple_of(self.block_tokens)
    }

    /// Record `run` as fully resident.
    fn insert(&mut self, run: &[u64]) {
        for blocks in 1..=run.len() / self.block_tokens {
            self.paths
                .insert(run[..blocks * self.block_tokens].to_vec());
        }
        self.ever_inserted.insert(run.to_vec());
    }

    /// Re-derive the resident set from the cache after an eviction by
    /// probing every block prefix of every run ever inserted (`plan` is
    /// side-effect-free, so probing cannot disturb the cache).
    fn resync(&mut self, cache: &PrefixCache) {
        let candidates: Vec<Vec<u64>> = self
            .ever_inserted
            .iter()
            .flat_map(|run| {
                (1..=run.len() / self.block_tokens)
                    .map(|blocks| run[..blocks * self.block_tokens].to_vec())
            })
            .collect();
        self.paths = candidates
            .into_iter()
            .filter(|p| cache.plan(p).matched == p.len())
            .collect();
    }
}

/// Run `ops` against a fresh cache + shadow, checking every invariant after
/// every step. Returns a digest of the final observable state for the
/// determinism property.
fn exercise(block_tokens: usize, ops: &[Op]) -> (u64, u64, usize, usize, usize, u64) {
    let mut cache = PrefixCache::new(block_tokens);
    let mut shadow = Shadow::new(block_tokens);
    // Outstanding leases with the block-aligned prefix each one pinned.
    let mut leases: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut resident_ids: BTreeSet<u64> = BTreeSet::new();
    let mut freed_ids: BTreeSet<u64> = BTreeSet::new();
    let mut next_id: u64 = 0;

    for op in ops {
        match op {
            Op::Lookup { run, keep } => {
                let lookup = &run[..cache.cacheable(run.len())];
                let plan = cache.plan(lookup);
                assert_eq!(plan.matched, shadow.matched(lookup), "plan vs shadow");
                assert_eq!(plan.can_insert, shadow.can_insert(lookup), "insertability");
                // plan is side-effect-free: a second call answers the same.
                assert_eq!(cache.plan(lookup).matched, plan.matched);

                let (lease, matched) = cache.acquire(lookup);
                assert_eq!(matched, plan.matched, "plan and acquire must agree");
                if plan.can_insert && matched < lookup.len() {
                    let suffix = &lookup[matched..];
                    let blocks = suffix.len() / block_tokens;
                    let ids: Vec<u64> = (next_id..next_id + blocks as u64).collect();
                    next_id += blocks as u64;
                    for &id in &ids {
                        resident_ids.insert(id);
                    }
                    cache.insert(lease, suffix, ids);
                    shadow.insert(lookup);
                }
                if *keep {
                    leases.push((lease, lookup[..matched].to_vec()));
                } else {
                    cache.release(lease);
                }
            }
            Op::Release { idx } => {
                if !leases.is_empty() {
                    let (lease, _) = leases.remove(idx % leases.len());
                    cache.release(lease);
                }
            }
            Op::Evict { shortfall } => {
                let before = cache.resident_blocks();
                let freed = cache.evict_for(*shortfall);
                assert!(freed.len() as u64 <= before, "over-freed the cache");
                for id in freed {
                    // Conservation: each freed id was resident and is freed
                    // at most once.
                    assert!(resident_ids.remove(&id), "freed an unknown block {id}");
                    assert!(freed_ids.insert(id), "block {id} freed twice");
                }
                shadow.resync(&cache);
                // Pinned prefixes survive arbitrary eviction pressure.
                for (_, pinned) in &leases {
                    assert_eq!(
                        cache.plan(pinned).matched,
                        pinned.len(),
                        "eviction broke a leased prefix"
                    );
                }
            }
        }
        assert_eq!(
            cache.resident_blocks(),
            shadow.paths.len() as u64,
            "resident blocks diverged from the shadow"
        );
        assert_eq!(
            cache.resident_tokens(),
            cache.resident_blocks() * block_tokens as u64,
            "cached tokens must be whole blocks"
        );
        assert_eq!(
            cache.resident_blocks(),
            resident_ids.len() as u64,
            "block-id conservation"
        );
    }
    let stats = cache.stats();
    (
        cache.resident_blocks(),
        cache.resident_tokens(),
        stats.lookups,
        stats.hits,
        stats.insertions,
        stats.evicted_blocks,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random op sequences: the radix tree must agree with the flat shadow
    /// model and uphold every bookkeeping invariant at every step.
    #[test]
    fn cache_agrees_with_shadow_model(
        block_tokens in 1usize..5,
        raws in proptest::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let ops: Vec<Op> = raws.iter().map(|&r| decode(r)).collect();
        exercise(block_tokens, &ops);
    }

    /// The same op sequence on two fresh caches produces identical
    /// observable state — the determinism both simulation loops rely on.
    #[test]
    fn cache_is_deterministic(
        block_tokens in 1usize..5,
        raws in proptest::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let ops: Vec<Op> = raws.iter().map(|&r| decode(r)).collect();
        prop_assert_eq!(exercise(block_tokens, &ops), exercise(block_tokens, &ops));
    }
}
