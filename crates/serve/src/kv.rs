//! Paged KV-cache pool: fixed-size-block page tables per sequence.
//!
//! Under [`KvAccounting::Paged`](crate::KvAccounting::Paged) the serving
//! simulator stops reserving each request's worst-case KV footprint at
//! admission (the "static preallocation" anti-pattern) and instead tracks
//! the blocks a sequence *actually holds*: `ceil(context / block_tokens)`
//! pages, growing by one page whenever a decoded token crosses a block
//! boundary. Freed pages go on a LIFO free list and are reused before new
//! pages are minted, so the pool models real allocator behaviour — block
//! identity, reuse, high-water marks — not just a byte counter.
//!
//! Internal fragmentation is bounded by construction: a sequence wastes at
//! most one partial block (its last), so the pool-wide waste fraction is at
//! most `active_sequences * (block_tokens - 1)` tokens of capacity. Larger
//! blocks mean fewer, cheaper page-table updates but more waste; the
//! simulator defaults to 16 tokens per block
//! ([`DEFAULT_BLOCK_TOKENS`](crate::DEFAULT_BLOCK_TOKENS)), the common
//! vLLM-style choice.

use hermes_core::cast::{u64_from_usize, usize_from_u64};

/// A paged KV-cache allocator over a bounded (or unbounded) pool of
/// fixed-size blocks, with one page table per request slot.
///
/// Block ids are abstract: the simulator never addresses their contents,
/// but minting them through a free list keeps the allocator honest — a
/// block is owned by at most one sequence at a time, and the proptests in
/// `tests/kv_pool.rs` hold the pool to that invariant.
#[derive(Debug, Clone)]
pub struct KvPool {
    /// Tokens per block.
    block_tokens: usize,
    /// Bytes per block.
    block_bytes: u64,
    /// Pool capacity in blocks (`None` = unbounded).
    capacity_blocks: Option<u64>,
    /// Page table per request slot: the block ids the slot currently holds.
    tables: Vec<Vec<u64>>,
    /// Released block ids available for reuse (LIFO).
    free: Vec<u64>,
    /// Next never-used block id to mint when the free list is empty.
    next_block: u64,
    /// Blocks currently held across all page tables.
    used_blocks: u64,
    /// High-water mark of `used_blocks`.
    peak_blocks: u64,
}

impl KvPool {
    /// An empty pool of `capacity_blocks` blocks (`None` = unbounded) with
    /// one (empty) page table per request slot.
    pub fn new(
        block_tokens: usize,
        block_bytes: u64,
        capacity_blocks: Option<u64>,
        slots: usize,
    ) -> Self {
        assert!(block_tokens >= 1, "blocks must hold at least one token");
        KvPool {
            block_tokens,
            block_bytes,
            capacity_blocks,
            tables: vec![Vec::new(); slots],
            free: Vec::new(),
            next_block: 0,
            used_blocks: 0,
            peak_blocks: 0,
        }
    }

    /// Grow the pool to cover `slots` request slots (new slots get empty
    /// page tables; existing tables are untouched). Lets a resumable
    /// replica accept injected requests over its lifetime instead of sizing
    /// every table up front.
    pub fn ensure_slots(&mut self, slots: usize) {
        if self.tables.len() < slots {
            self.tables.resize_with(slots, Vec::new);
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Pool capacity in blocks (`None` = unbounded).
    pub fn capacity_blocks(&self) -> Option<u64> {
        self.capacity_blocks
    }

    /// Blocks currently held across all page tables.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// High-water mark of held blocks.
    pub fn peak_blocks(&self) -> u64 {
        self.peak_blocks
    }

    /// Blocks needed to hold a context of `tokens` tokens:
    /// `ceil(tokens / block_tokens)`.
    pub fn blocks_for_tokens(&self, tokens: usize) -> u64 {
        u64_from_usize(tokens.div_ceil(self.block_tokens))
    }

    /// Whether `extra` more blocks fit under the pool capacity.
    pub fn fits(&self, extra: u64) -> bool {
        match self.capacity_blocks {
            Some(cap) => self.used_blocks + extra <= cap,
            None => true,
        }
    }

    /// Blocks currently held by request slot `idx`.
    pub fn held(&self, idx: usize) -> u64 {
        u64_from_usize(self.tables[idx].len())
    }

    /// Allocate `blocks` blocks to slot `idx`, reusing freed blocks first.
    ///
    /// The caller must have checked [`KvPool::fits`]; allocating past a
    /// bounded capacity is a scheduler bug.
    pub fn allocate(&mut self, idx: usize, blocks: u64) {
        debug_assert!(self.fits(blocks), "allocation past pool capacity");
        for _ in 0..blocks {
            let block = self.free.pop().unwrap_or_else(|| {
                let minted = self.next_block;
                self.next_block += 1;
                minted
            });
            self.tables[idx].push(block);
        }
        self.used_blocks += blocks;
        self.peak_blocks = self.peak_blocks.max(self.used_blocks);
    }

    /// Allocate one more block to slot `idx` (a decoded token crossed a
    /// block boundary).
    pub fn grow(&mut self, idx: usize) {
        self.allocate(idx, 1);
    }

    /// Release every block slot `idx` holds back to the free list and
    /// return how many were freed.
    pub fn release(&mut self, idx: usize) -> u64 {
        let freed = u64_from_usize(self.tables[idx].len());
        // Drain in reverse so re-allocation hands back the same ids in the
        // same order (LIFO free list).
        while let Some(block) = self.tables[idx].pop() {
            self.free.push(block);
        }
        self.used_blocks -= freed;
        freed
    }

    /// Take ownership of `blocks` blocks outside any request slot and
    /// return their ids.
    ///
    /// The prefix cache holds resident prefixes this way: the blocks count
    /// against `used_blocks` (and the high-water mark) like any page-table
    /// block, but belong to the cache rather than to a sequence. The caller
    /// must have checked [`KvPool::fits`].
    pub fn acquire_blocks(&mut self, blocks: u64) -> Vec<u64> {
        debug_assert!(self.fits(blocks), "allocation past pool capacity");
        let mut ids = Vec::with_capacity(usize_from_u64(blocks));
        for _ in 0..blocks {
            let block = self.free.pop().unwrap_or_else(|| {
                let minted = self.next_block;
                self.next_block += 1;
                minted
            });
            ids.push(block);
        }
        self.used_blocks += blocks;
        self.peak_blocks = self.peak_blocks.max(self.used_blocks);
        ids
    }

    /// Return blocks previously taken with [`KvPool::acquire_blocks`] to
    /// the free list.
    pub fn surrender_blocks(&mut self, ids: &[u64]) {
        self.used_blocks -= u64_from_usize(ids.len());
        // Reverse for the same LIFO-stability reason as `release`.
        for &block in ids.iter().rev() {
            self.free.push(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math_is_ceiling_division() {
        let pool = KvPool::new(16, 1024, None, 0);
        assert_eq!(pool.blocks_for_tokens(0), 0);
        assert_eq!(pool.blocks_for_tokens(1), 1);
        assert_eq!(pool.blocks_for_tokens(16), 1);
        assert_eq!(pool.blocks_for_tokens(17), 2);
        assert_eq!(pool.blocks_for_tokens(32), 2);
    }

    #[test]
    fn freed_blocks_are_reused_before_minting() {
        let mut pool = KvPool::new(4, 64, Some(8), 2);
        pool.allocate(0, 3);
        assert_eq!(pool.held(0), 3);
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.release(0), 3);
        assert_eq!(pool.used_blocks(), 0);
        // The next allocation must come from the free list, not mint block
        // ids 3..5.
        pool.allocate(1, 2);
        assert!(pool.tables[1].iter().all(|&b| b < 3));
        assert_eq!(pool.peak_blocks(), 3);
    }

    #[test]
    fn capacity_gates_fits() {
        let mut pool = KvPool::new(4, 64, Some(2), 1);
        assert!(pool.fits(2));
        assert!(!pool.fits(3));
        pool.allocate(0, 2);
        assert!(!pool.fits(1));
        let unbounded = KvPool::new(4, 64, None, 1);
        assert!(unbounded.fits(u64::MAX / 2));
    }

    #[test]
    fn acquired_blocks_round_trip_through_the_free_list() {
        let mut pool = KvPool::new(4, 64, Some(4), 1);
        let ids = pool.acquire_blocks(3);
        assert_eq!(ids.len(), 3);
        assert_eq!(pool.used_blocks(), 3);
        assert!(pool.fits(1));
        assert!(!pool.fits(2));
        pool.surrender_blocks(&ids);
        assert_eq!(pool.used_blocks(), 0);
        // Surrendered blocks are reused before minting fresh ids.
        pool.allocate(0, 2);
        assert!(pool.tables[0].iter().all(|&b| b < 3));
        assert_eq!(pool.peak_blocks(), 3);
    }

    #[test]
    fn grow_adds_one_block() {
        let mut pool = KvPool::new(2, 32, None, 1);
        pool.allocate(0, 1);
        pool.grow(0);
        assert_eq!(pool.held(0), 2);
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(pool.peak_blocks(), 2);
    }
}
