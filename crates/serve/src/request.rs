//! Requests offered to the serving simulator and the per-request records it
//! produces.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use hermes_core::{HermesError, LengthDistribution, RequestLength, Workload};

/// One request offered to the serving simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Request id (index in arrival order).
    pub id: usize,
    /// Arrival time in seconds since simulation start.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of tokens to generate.
    pub gen_len: usize,
}

impl ServingRequest {
    /// Build one request per arrival time with per-request lengths sampled
    /// from `lengths` (seeded, deterministic — equal inputs always produce
    /// identical requests).
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] when the length spec fails
    /// [`LengthDistribution::validate`] or a [`LengthDistribution::Trace`]
    /// supplies a different number of lengths than there are arrivals.
    pub fn sample(
        template: &Workload,
        arrival_times: &[f64],
        lengths: &LengthDistribution,
        seed: u64,
    ) -> Result<Vec<ServingRequest>, HermesError> {
        let lengths = sample_request_lengths(lengths, template, arrival_times.len(), seed)?;
        Ok(arrival_times
            .iter()
            .zip(lengths)
            .enumerate()
            .map(|(id, (&arrival, length))| ServingRequest {
                id,
                arrival,
                prompt_len: length.prompt_len,
                gen_len: length.gen_len,
            })
            .collect())
    }
}

/// Sample `count` per-request lengths from a [`LengthDistribution`]. Fully
/// deterministic: equal `(spec, template, count, seed)` always produce the
/// identical lengths.
///
/// # Errors
///
/// Returns [`HermesError::InvalidWorkload`] when the spec fails
/// [`LengthDistribution::validate`] or a [`LengthDistribution::Trace`]
/// length count does not match `count`.
pub fn sample_request_lengths(
    spec: &LengthDistribution,
    template: &Workload,
    count: usize,
    seed: u64,
) -> Result<Vec<RequestLength>, HermesError> {
    spec.validate()?;
    match spec {
        LengthDistribution::Fixed => Ok(vec![
            RequestLength {
                prompt_len: template.prompt_len,
                gen_len: template.gen_len,
            };
            count
        ]),
        LengthDistribution::Uniform {
            prompt_min,
            prompt_max,
            gen_min,
            gen_max,
        } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok((0..count)
                .map(|_| RequestLength {
                    prompt_len: rng.gen_range(*prompt_min..=*prompt_max),
                    gen_len: rng.gen_range(*gen_min..=*gen_max),
                })
                .collect())
        }
        LengthDistribution::Trace { lengths } => {
            if lengths.len() != count {
                return Err(HermesError::InvalidWorkload(format!(
                    "length trace supplies {} request lengths but {} requests were asked for",
                    lengths.len(),
                    count
                )));
            }
            Ok(lengths.clone())
        }
    }
}

/// The lifecycle timestamps of one completed request (all in seconds of
/// virtual time since simulation start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (index in arrival order).
    pub id: usize,
    /// When the request arrived.
    pub arrival: f64,
    /// When the request left the admission queue (its prefill started).
    pub admitted: f64,
    /// When the request's first token was generated.
    pub first_token: f64,
    /// When the request's last token was generated.
    pub completed: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Tokens generated.
    pub gen_len: usize,
}

impl RequestRecord {
    /// Time spent waiting in the admission queue.
    pub fn queue_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Time to first token, measured from arrival.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// End-to-end latency, measured from arrival.
    pub fn e2e(&self) -> f64 {
        self.completed - self.arrival
    }

    /// Time per output token after the first (0 for single-token requests).
    pub fn tpot(&self) -> f64 {
        if self.gen_len > 1 {
            (self.completed - self.first_token) / (self.gen_len - 1) as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    #[test]
    fn fixed_lengths_inherit_the_template() {
        let mut template = Workload::paper_default(ModelId::Opt13B);
        template.prompt_len = 64;
        template.gen_len = 16;
        let requests =
            ServingRequest::sample(&template, &[0.0, 1.5], &LengthDistribution::Fixed, 0).unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[1].id, 1);
        assert_eq!(requests[1].arrival, 1.5);
        assert_eq!(requests[1].prompt_len, 64);
        assert_eq!(requests[1].gen_len, 16);
    }

    #[test]
    fn sampled_lengths_are_deterministic_bounded_and_checked() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let uniform = LengthDistribution::Uniform {
            prompt_min: 16,
            prompt_max: 64,
            gen_min: 1,
            gen_max: 32,
        };
        let a = sample_request_lengths(&uniform, &template, 100, 7).unwrap();
        let b = sample_request_lengths(&uniform, &template, 100, 7).unwrap();
        assert_eq!(a, b, "equal seeds must give identical lengths");
        assert!(a
            .iter()
            .all(|l| (16..=64).contains(&l.prompt_len) && (1..=32).contains(&l.gen_len)));
        // The whole range is reachable, not just one constant.
        assert!(a.iter().any(|l| l.prompt_len != a[0].prompt_len));
        let c = sample_request_lengths(&uniform, &template, 100, 8).unwrap();
        assert_ne!(a, c, "different seeds must give different lengths");

        let fixed = sample_request_lengths(&LengthDistribution::Fixed, &template, 3, 0).unwrap();
        assert!(fixed
            .iter()
            .all(|l| l.prompt_len == template.prompt_len && l.gen_len == template.gen_len));

        let trace = LengthDistribution::Trace {
            lengths: vec![RequestLength {
                prompt_len: 8,
                gen_len: 4,
            }],
        };
        assert_eq!(
            sample_request_lengths(&trace, &template, 1, 0).unwrap()[0].gen_len,
            4
        );
        assert!(matches!(
            sample_request_lengths(&trace, &template, 2, 0),
            Err(HermesError::InvalidWorkload(_))
        ));
    }

    #[test]
    fn sampled_requests_carry_per_request_lengths() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let requests = ServingRequest::sample(
            &template,
            &[0.0, 1.0],
            &LengthDistribution::Trace {
                lengths: vec![
                    RequestLength {
                        prompt_len: 8,
                        gen_len: 2,
                    },
                    RequestLength {
                        prompt_len: 32,
                        gen_len: 16,
                    },
                ],
            },
            0,
        )
        .unwrap();
        assert_eq!(requests[0].prompt_len, 8);
        assert_eq!(requests[0].gen_len, 2);
        assert_eq!(requests[1].prompt_len, 32);
        assert_eq!(requests[1].arrival, 1.0);
    }

    #[test]
    fn record_metrics_are_differences() {
        let record = RequestRecord {
            id: 0,
            arrival: 1.0,
            admitted: 3.0,
            first_token: 4.0,
            completed: 13.0,
            prompt_len: 32,
            gen_len: 10,
        };
        assert!((record.queue_delay() - 2.0).abs() < 1e-12);
        assert!((record.ttft() - 3.0).abs() < 1e-12);
        assert!((record.e2e() - 12.0).abs() < 1e-12);
        assert!((record.tpot() - 1.0).abs() < 1e-12);
        let single = RequestRecord {
            gen_len: 1,
            ..record
        };
        assert_eq!(single.tpot(), 0.0);
    }
}
