//! Requests offered to the serving simulator and the per-request records it
//! produces.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use hermes_core::{
    HermesError, LengthDistribution, PrioritySpec, PromptSpec, RequestClass, RequestLength,
    Workload,
};

/// One request offered to the serving simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Request id (index in arrival order).
    pub id: usize,
    /// Arrival time in seconds since simulation start.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of tokens to generate.
    pub gen_len: usize,
    /// Scheduling class: priority tier and optional TTFT deadline.
    pub class: RequestClass,
    /// Leading prompt token ids shared with other requests (empty for a
    /// unique prompt). Only this run is eligible for prefix-cache reuse;
    /// the rest of the prompt is treated as distinct per request.
    pub prefix: Vec<u64>,
}

impl ServingRequest {
    /// Build one request per arrival time with per-request lengths sampled
    /// from `lengths` (seeded, deterministic — equal inputs always produce
    /// identical requests), classes assigned by `classes` (deterministic by
    /// construction), and shared-prefix runs sampled from `prompts` with
    /// `prefix_seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HermesError::InvalidWorkload`] when the length, priority,
    /// or prompt spec fails validation, a trace spec supplies a different
    /// number of entries than there are arrivals, or a traced prefix is
    /// longer than its request's prompt.
    pub fn sample(
        template: &Workload,
        arrival_times: &[f64],
        lengths: &LengthDistribution,
        classes: &PrioritySpec,
        prompts: &PromptSpec,
        seed: u64,
        prefix_seed: u64,
    ) -> Result<Vec<ServingRequest>, HermesError> {
        let lengths = sample_request_lengths(lengths, template, arrival_times.len(), seed)?;
        let classes = assign_request_classes(classes, arrival_times.len())?;
        let prefixes = sample_request_prefixes(prompts, &lengths, prefix_seed)?;
        Ok(arrival_times
            .iter()
            .zip(lengths.into_iter().zip(classes.into_iter().zip(prefixes)))
            .enumerate()
            .map(
                |(id, (&arrival, (length, (class, prefix))))| ServingRequest {
                    id,
                    arrival,
                    prompt_len: length.prompt_len,
                    gen_len: length.gen_len,
                    class,
                    prefix,
                },
            )
            .collect())
    }

    /// The absolute TTFT deadline of this request (`arrival +
    /// ttft_deadline`), or `None` for best-effort requests.
    pub fn absolute_deadline(&self) -> Option<f64> {
        self.class.ttft_deadline.map(|d| self.arrival + d)
    }
}

/// Assign `count` request classes from a [`PrioritySpec`]. Fully
/// deterministic — no seeded draws, the spec pins every class.
///
/// # Errors
///
/// Returns [`HermesError::InvalidWorkload`] when the spec fails
/// [`PrioritySpec::validate`] or a [`PrioritySpec::Trace`] class count does
/// not match `count`.
pub fn assign_request_classes(
    spec: &PrioritySpec,
    count: usize,
) -> Result<Vec<RequestClass>, HermesError> {
    spec.validate()?;
    match spec {
        PrioritySpec::Fixed => Ok(vec![RequestClass::default(); count]),
        PrioritySpec::Cycle { classes } => {
            Ok((0..count).map(|i| classes[i % classes.len()]).collect())
        }
        PrioritySpec::Trace { classes } => {
            if classes.len() != count {
                return Err(HermesError::InvalidWorkload(format!(
                    "priority trace supplies {} request classes but {} requests were asked for",
                    classes.len(),
                    count
                )));
            }
            Ok(classes.clone())
        }
    }
}

/// Sample `count` per-request lengths from a [`LengthDistribution`]. Fully
/// deterministic: equal `(spec, template, count, seed)` always produce the
/// identical lengths.
///
/// # Errors
///
/// Returns [`HermesError::InvalidWorkload`] when the spec fails
/// [`LengthDistribution::validate`] or a [`LengthDistribution::Trace`]
/// length count does not match `count`.
pub fn sample_request_lengths(
    spec: &LengthDistribution,
    template: &Workload,
    count: usize,
    seed: u64,
) -> Result<Vec<RequestLength>, HermesError> {
    spec.validate()?;
    match spec {
        LengthDistribution::Fixed => Ok(vec![
            RequestLength {
                prompt_len: template.prompt_len,
                gen_len: template.gen_len,
            };
            count
        ]),
        LengthDistribution::Uniform {
            prompt_min,
            prompt_max,
            gen_min,
            gen_max,
        } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok((0..count)
                .map(|_| RequestLength {
                    prompt_len: rng.gen_range(*prompt_min..=*prompt_max),
                    gen_len: rng.gen_range(*gen_min..=*gen_max),
                })
                .collect())
        }
        LengthDistribution::Trace { lengths } => {
            if lengths.len() != count {
                return Err(HermesError::InvalidWorkload(format!(
                    "length trace supplies {} request lengths but {} requests were asked for",
                    lengths.len(),
                    count
                )));
            }
            Ok(lengths.clone())
        }
    }
}

/// Sample one shared-prefix token run per request from a [`PromptSpec`].
/// Deterministic: equal `(spec, lengths, seed)` always produce identical
/// prefixes.
///
/// [`PromptSpec::SharedGroups`] draws each request's group uniformly with a
/// seeded generator and synthesizes the group's token ids; a prefix longer
/// than its request's prompt is clamped to the prompt, so shorter prompts
/// still share their whole leading run with the group. [`PromptSpec::Trace`]
/// prefixes are taken verbatim and must fit inside their prompts.
///
/// # Errors
///
/// Returns [`HermesError::InvalidWorkload`] when the spec fails
/// [`PromptSpec::validate`], a trace supplies a different number of prefixes
/// than there are requests, or a traced prefix is longer than its prompt.
pub fn sample_request_prefixes(
    spec: &PromptSpec,
    lengths: &[RequestLength],
    seed: u64,
) -> Result<Vec<Vec<u64>>, HermesError> {
    spec.validate()?;
    match spec {
        PromptSpec::Unique => Ok(vec![Vec::new(); lengths.len()]),
        PromptSpec::SharedGroups { groups, prefix_len } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok(lengths
                .iter()
                .map(|length| {
                    let group = rng.gen_range(0..*groups) as u64;
                    let len = (*prefix_len).min(length.prompt_len);
                    // Token ids unique to the group, so distinct groups
                    // never alias in the radix tree.
                    (0..len as u64).map(|p| (group << 32) | p).collect()
                })
                .collect())
        }
        PromptSpec::Trace { prefixes } => {
            if prefixes.len() != lengths.len() {
                return Err(HermesError::InvalidWorkload(format!(
                    "prompt trace supplies {} prefixes but {} requests were asked for",
                    prefixes.len(),
                    lengths.len()
                )));
            }
            for (i, (prefix, length)) in prefixes.iter().zip(lengths).enumerate() {
                if prefix.len() > length.prompt_len {
                    return Err(HermesError::InvalidWorkload(format!(
                        "prompt trace prefix {i} has {} tokens but the prompt is only {} tokens",
                        prefix.len(),
                        length.prompt_len
                    )));
                }
            }
            Ok(prefixes.clone())
        }
    }
}

/// The lifecycle timestamps of one completed request (all in seconds of
/// virtual time since simulation start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (index in arrival order).
    pub id: usize,
    /// When the request arrived.
    pub arrival: f64,
    /// When the request left the admission queue (its prefill started).
    pub admitted: f64,
    /// When the request's first token was generated.
    pub first_token: f64,
    /// When the request's last token was generated.
    pub completed: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Tokens generated.
    pub gen_len: usize,
    /// Scheduling class the request was offered with.
    pub class: RequestClass,
    /// How many times the request was evicted from the batch (0 when it ran
    /// uninterrupted).
    pub preemptions: usize,
    /// Prompt tokens served from the prefix cache at the request's first
    /// admission (0 on a miss or with the cache disabled). A non-zero value
    /// marks the request a cache hit for the TTFT hit/miss split.
    pub reused_prefix_tokens: usize,
}

impl RequestRecord {
    /// Time spent waiting in the admission queue before the request's
    /// *first* admission (re-admissions after a preemption do not reset it).
    pub fn queue_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Time to first token, measured from arrival.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// Whether the request carried a TTFT deadline and met it.
    ///
    /// `None` for best-effort requests (no deadline to meet).
    pub fn met_ttft_deadline(&self) -> Option<bool> {
        self.class.ttft_deadline.map(|d| self.ttft() <= d)
    }

    /// End-to-end latency, measured from arrival.
    pub fn e2e(&self) -> f64 {
        self.completed - self.arrival
    }

    /// Time per output token after the first (0 for single-token requests).
    pub fn tpot(&self) -> f64 {
        if self.gen_len > 1 {
            (self.completed - self.first_token) / (self.gen_len - 1) as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    #[test]
    fn fixed_lengths_inherit_the_template() {
        let mut template = Workload::paper_default(ModelId::Opt13B);
        template.prompt_len = 64;
        template.gen_len = 16;
        let requests = ServingRequest::sample(
            &template,
            &[0.0, 1.5],
            &LengthDistribution::Fixed,
            &PrioritySpec::Fixed,
            &PromptSpec::Unique,
            0,
            0,
        )
        .unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[1].id, 1);
        assert_eq!(requests[1].arrival, 1.5);
        assert_eq!(requests[1].prompt_len, 64);
        assert_eq!(requests[1].gen_len, 16);
        assert_eq!(requests[1].class, RequestClass::default());
        assert_eq!(requests[1].absolute_deadline(), None);
    }

    #[test]
    fn class_assignment_is_deterministic_and_checked() {
        let gold = RequestClass::new(0).with_ttft_deadline(2.0);
        let bulk = RequestClass::new(2);
        let cycle = PrioritySpec::Cycle {
            classes: vec![gold, bulk],
        };
        let classes = assign_request_classes(&cycle, 5).unwrap();
        assert_eq!(classes.len(), 5);
        assert_eq!(classes[0], gold);
        assert_eq!(classes[1], bulk);
        assert_eq!(classes[4], gold);

        let fixed = assign_request_classes(&PrioritySpec::Fixed, 3).unwrap();
        assert!(fixed.iter().all(|c| *c == RequestClass::default()));

        let trace = PrioritySpec::Trace {
            classes: vec![bulk],
        };
        assert_eq!(assign_request_classes(&trace, 1).unwrap()[0], bulk);
        assert!(matches!(
            assign_request_classes(&trace, 2),
            Err(HermesError::InvalidWorkload(_))
        ));
        assert!(matches!(
            assign_request_classes(&PrioritySpec::Cycle { classes: vec![] }, 1),
            Err(HermesError::InvalidWorkload(_))
        ));
    }

    #[test]
    fn absolute_deadlines_offset_from_arrival() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let requests = ServingRequest::sample(
            &template,
            &[0.0, 1.5],
            &LengthDistribution::Fixed,
            &PrioritySpec::Cycle {
                classes: vec![RequestClass::new(0).with_ttft_deadline(2.0)],
            },
            &PromptSpec::Unique,
            0,
            0,
        )
        .unwrap();
        assert_eq!(requests[0].absolute_deadline(), Some(2.0));
        assert_eq!(requests[1].absolute_deadline(), Some(3.5));
    }

    #[test]
    fn sampled_lengths_are_deterministic_bounded_and_checked() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let uniform = LengthDistribution::Uniform {
            prompt_min: 16,
            prompt_max: 64,
            gen_min: 1,
            gen_max: 32,
        };
        let a = sample_request_lengths(&uniform, &template, 100, 7).unwrap();
        let b = sample_request_lengths(&uniform, &template, 100, 7).unwrap();
        assert_eq!(a, b, "equal seeds must give identical lengths");
        assert!(a
            .iter()
            .all(|l| (16..=64).contains(&l.prompt_len) && (1..=32).contains(&l.gen_len)));
        // The whole range is reachable, not just one constant.
        assert!(a.iter().any(|l| l.prompt_len != a[0].prompt_len));
        let c = sample_request_lengths(&uniform, &template, 100, 8).unwrap();
        assert_ne!(a, c, "different seeds must give different lengths");

        let fixed = sample_request_lengths(&LengthDistribution::Fixed, &template, 3, 0).unwrap();
        assert!(fixed
            .iter()
            .all(|l| l.prompt_len == template.prompt_len && l.gen_len == template.gen_len));

        let trace = LengthDistribution::Trace {
            lengths: vec![RequestLength {
                prompt_len: 8,
                gen_len: 4,
            }],
        };
        assert_eq!(
            sample_request_lengths(&trace, &template, 1, 0).unwrap()[0].gen_len,
            4
        );
        assert!(matches!(
            sample_request_lengths(&trace, &template, 2, 0),
            Err(HermesError::InvalidWorkload(_))
        ));
    }

    #[test]
    fn sampled_requests_carry_per_request_lengths() {
        let template = Workload::paper_default(ModelId::Opt13B);
        let requests = ServingRequest::sample(
            &template,
            &[0.0, 1.0],
            &LengthDistribution::Trace {
                lengths: vec![
                    RequestLength {
                        prompt_len: 8,
                        gen_len: 2,
                    },
                    RequestLength {
                        prompt_len: 32,
                        gen_len: 16,
                    },
                ],
            },
            &PrioritySpec::Fixed,
            &PromptSpec::Unique,
            0,
            0,
        )
        .unwrap();
        assert_eq!(requests[0].prompt_len, 8);
        assert_eq!(requests[0].gen_len, 2);
        assert_eq!(requests[1].prompt_len, 32);
        assert_eq!(requests[1].arrival, 1.0);
    }

    #[test]
    fn record_metrics_are_differences() {
        let record = RequestRecord {
            id: 0,
            arrival: 1.0,
            admitted: 3.0,
            first_token: 4.0,
            completed: 13.0,
            prompt_len: 32,
            gen_len: 10,
            class: RequestClass::default(),
            preemptions: 0,
            reused_prefix_tokens: 0,
        };
        assert!((record.queue_delay() - 2.0).abs() < 1e-12);
        assert!((record.ttft() - 3.0).abs() < 1e-12);
        assert!((record.e2e() - 12.0).abs() < 1e-12);
        assert!((record.tpot() - 1.0).abs() < 1e-12);
        let single = RequestRecord {
            gen_len: 1,
            ..record.clone()
        };
        assert_eq!(single.tpot(), 0.0);
        // Deadline accounting: TTFT here is 3.0s.
        assert_eq!(record.met_ttft_deadline(), None);
        let met = RequestRecord {
            class: RequestClass::new(0).with_ttft_deadline(3.5),
            ..record.clone()
        };
        assert_eq!(met.met_ttft_deadline(), Some(true));
        let missed = RequestRecord {
            class: RequestClass::new(0).with_ttft_deadline(2.5),
            ..record
        };
        assert_eq!(missed.met_ttft_deadline(), Some(false));
    }
}
