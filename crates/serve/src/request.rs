//! Requests offered to the serving simulator and the per-request records it
//! produces.

use serde::{Deserialize, Serialize};

use hermes_core::Workload;

/// One request offered to the serving simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Request id (index in arrival order).
    pub id: usize,
    /// Arrival time in seconds since simulation start.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of tokens to generate.
    pub gen_len: usize,
}

impl ServingRequest {
    /// Build one request per arrival time, all with the template workload's
    /// prompt and generation lengths.
    pub fn from_template(template: &Workload, arrival_times: &[f64]) -> Vec<ServingRequest> {
        arrival_times
            .iter()
            .enumerate()
            .map(|(id, &arrival)| ServingRequest {
                id,
                arrival,
                prompt_len: template.prompt_len,
                gen_len: template.gen_len,
            })
            .collect()
    }
}

/// The lifecycle timestamps of one completed request (all in seconds of
/// virtual time since simulation start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (index in arrival order).
    pub id: usize,
    /// When the request arrived.
    pub arrival: f64,
    /// When the request left the admission queue (its prefill started).
    pub admitted: f64,
    /// When the request's first token was generated.
    pub first_token: f64,
    /// When the request's last token was generated.
    pub completed: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Tokens generated.
    pub gen_len: usize,
}

impl RequestRecord {
    /// Time spent waiting in the admission queue.
    pub fn queue_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Time to first token, measured from arrival.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// End-to-end latency, measured from arrival.
    pub fn e2e(&self) -> f64 {
        self.completed - self.arrival
    }

    /// Time per output token after the first (0 for single-token requests).
    pub fn tpot(&self) -> f64 {
        if self.gen_len > 1 {
            (self.completed - self.first_token) / (self.gen_len - 1) as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    #[test]
    fn requests_inherit_template_lengths() {
        let mut template = Workload::paper_default(ModelId::Opt13B);
        template.prompt_len = 64;
        template.gen_len = 16;
        let requests = ServingRequest::from_template(&template, &[0.0, 1.5]);
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[1].id, 1);
        assert_eq!(requests[1].arrival, 1.5);
        assert_eq!(requests[1].prompt_len, 64);
        assert_eq!(requests[1].gen_len, 16);
    }

    #[test]
    fn record_metrics_are_differences() {
        let record = RequestRecord {
            id: 0,
            arrival: 1.0,
            admitted: 3.0,
            first_token: 4.0,
            completed: 13.0,
            prompt_len: 32,
            gen_len: 10,
        };
        assert!((record.queue_delay() - 2.0).abs() < 1e-12);
        assert!((record.ttft() - 3.0).abs() < 1e-12);
        assert!((record.e2e() - 12.0).abs() < 1e-12);
        assert!((record.tpot() - 1.0).abs() < 1e-12);
        let single = RequestRecord {
            gen_len: 1,
            ..record
        };
        assert_eq!(single.tpot(), 0.0);
    }
}
