//! `hermes-serve` — an open-loop, request-level serving simulator on top of
//! the `hermes-core` engines.
//!
//! The paper evaluates Hermes under closed-loop, fixed-batch workloads; this
//! crate models the production-serving scenario instead: requests arrive
//! over time ([`ArrivalProcess`]: all-at-once, Poisson, bursty, or a
//! replayed trace) with homogeneous or per-request prompt/generation
//! lengths ([`LengthDistribution`]: fixed,
//! uniform, or trace-supplied), carry a scheduling class
//! ([`RequestClass`]: a priority tier plus an optional TTFT deadline,
//! assigned deterministically by a [`PrioritySpec`]), wait in an admission
//! queue bounded by batch and KV-memory caps ([`AdmissionConfig`]), and are
//! batched by a scheduler — [`BatchingPolicy::Continuous`] joins requests at
//! token boundaries and frees slots as sequences finish,
//! [`BatchingPolicy::Static`] runs closed-loop batches to completion.
//!
//! The ready queue is ordered by a [`SchedulingPolicy`]: FCFS (arrival
//! order), priority (tier first, FCFS within a tier) or EDF (earliest
//! absolute TTFT deadline first; best-effort requests last). Under
//! [`PreemptionPolicy::EvictAndRefill`], a blocked higher-ranked waiter
//! evicts strictly lower-ranked active sequences (worst-ranked first):
//! each victim releases its KV reservation and batch slot and is requeued.
//! Preemption is *restart with recompute* — the semantics the engine cost
//! models already express: on re-admission the victim re-prefills its
//! prompt plus every token it had already generated (priced through
//! `prefill_cost` / chunked prefill over the effective length), then decode
//! resumes where it stopped, so no token is priced as decode work twice and
//! token conservation holds exactly. Preemption never evicts equal-ranked
//! work, which bounds eviction churn: under priority scheduling requests
//! never preempt within their own tier, under EDF never within an equal
//! absolute deadline (EDF ranks by deadline alone, so same-tier requests
//! with different deadlines *can* evict each other), and under FCFS never
//! at all.
//!
//! KV memory is accounted in one of two modes ([`KvAccounting`]). The
//! default, `Reserve`, charges each request its worst-case
//! `prompt_len + gen_len` KV footprint up front at admission. `Paged`
//! (enable with [`AdmissionConfig::with_paged_kv`]) carves the KV budget
//! into fixed-size blocks of `block_tokens` tokens managed by a [`KvPool`]:
//! each sequence holds a per-sequence page table of blocks covering its
//! *current* context plus one write slot — the token it is about to decode
//! — and grows by one block at a time as decode crosses block boundaries,
//! so memory that `Reserve` would hold idle for unfinished generations is
//! free to admit more requests. Freed blocks return to a free list and are
//! reused; the report's [`KvPoolReport`](hermes_core::KvPoolReport) section
//! tracks pool utilization (mean and peak) and internal fragmentation (the
//! slack inside partially-filled tail blocks — bounded by one block per
//! sequence, so small `block_tokens` waste less but grow more often). The
//! write slot is also a liveness guarantee: a (re)admitted sequence can
//! always decode at least one token before it needs to grow, so
//! growth-eviction cycles terminate. When the pool is full, a growing
//! sequence evicts the worst strictly-outranked active sequence, or
//! self-evicts when nothing outranks it.
//!
//! [`PreemptionPolicy::SwapOut`] replaces restart-with-recompute with KV
//! paging to a host-DRAM/NDP swap tier: an evicted victim's held KV bytes
//! are written out (priced through
//! [`StepCostModel::swap_cost`](hermes_core::StepCostModel::swap_cost),
//! modelling the PCIe/DIMM link), and on re-admission the same bytes are
//! read back and the sequence rejoins decode exactly where it stopped — no
//! token is ever re-prefilled. The report's
//! [`SwapReport`](hermes_core::SwapReport) section counts swap-outs/ins
//! and bytes moved. SwapOut trades link bandwidth for recompute: under
//! KV-pressure it protects victim-class end-to-end latency (the victims
//! skip the re-prefill), while EvictAndRefill keeps the link free at the
//! price of recomputing every evicted token.
//!
//! A radix **prefix cache** ([`PrefixCacheMode`], requires paged
//! accounting) adds KV reuse *across* requests: prompts declare a shared
//! leading token run ([`PromptSpec`]: unique, sampled shared-prefix groups,
//! or explicit per-request token traces), and the cache keeps the blocks
//! of completed prefixes resident in the same [`KvPool`] the sequences
//! allocate from, organised as a radix tree whose nodes own block-aligned
//! edges. An admission whose prefix matches cached content maps the
//! matched blocks copy-free — charging prefill only for the unmatched
//! suffix — and pins the matched path with a per-request lease for as long
//! as it runs; referenced nodes are never evicted, while unreferenced ones
//! are reclaimed least-popular-first (fewest hits, then least recently
//! used) only under capacity pressure, before any sequence would be
//! preempted for space. [`SchedulingPolicy::PrefixAffinity`] complements
//! the cache by ranking the ready queue so same-prefix requests are
//! admitted adjacently and co-batched while their prefix is warm. The
//! report's [`PrefixCacheReport`](hermes_core::PrefixCacheReport) section
//! tracks hit rate, reused vs recomputed prefill tokens, residency and a
//! TTFT split by hit/miss.
//!
//! Admitted prompts are prefilled under a [`PrefillPolicy`]:
//! [`PrefillPolicy::StallTheWorld`] prices each admitted prompt in one pass
//! before the next decode step, so every in-flight sequence absorbs the full
//! prefill of each late joiner into its per-token latency;
//! [`PrefillPolicy::Chunked`] splits prompts into token chunks and
//! co-schedules at most a token budget of prefill per boundary alongside the
//! decode batch (piggybacked prefill, priced through
//! [`StepCostModel::chunked_step_cost`](hermes_core::StepCostModel::chunked_step_cost)),
//! bounding the prefill slice any in-flight token absorbs. Chunks
//! co-scheduled in one step group by prompt length and share a batched
//! prefill pass, so a prompt prefilled alone amortizes to exactly its
//! one-shot cost and same-length prompts advancing in lockstep to exactly
//! their stall-the-world group cost — chunking redistributes work over
//! token boundaries without changing the total (only same-length prompts
//! whose chunks cannot co-schedule under a tight budget lose the
//! batched-pass sharing).
//!
//! The simulator is a deterministic discrete-event loop over a virtual
//! clock. It prices every decode step through the engine's
//! [`StepCostModel`](hermes_core::StepCostModel), so the cost of a step
//! follows the *current* batch composition (how many sequences are active
//! and how long their contexts are), and produces per-request
//! [`RequestRecord`]s plus an aggregate
//! [`ServingReport`](hermes_core::ServingReport) (queueing delay, TTFT,
//! TPOT and end-to-end percentiles, goodput, preemption counts, per-class
//! latency distributions and SLO attainment — the fraction of
//! deadline-carrying requests whose TTFT met the deadline). TPOT is
//! measured per request
//! as the time from its first to its last generated token over `gen_len -
//! 1` gaps; single-token requests have no gap and are excluded from the
//! TPOT sample set. Equal inputs always produce bitwise-identical outcomes,
//! and with all-at-once arrivals, no caps, static batching and
//! stall-the-world prefill the simulation reproduces the closed-loop
//! [`InferenceReport`](hermes_core::InferenceReport) numbers exactly.
//!
//! # Performance
//!
//! The hot loop is event-driven. Waiting requests sit in a [`ReadyQueue`]
//! — a binary heap over `(rank, arrival index)` (ranks are immutable per
//! request, so entries never decay) — and the decode batch is an indexed
//! set that maintains its context-length composition, rank order and
//! completion events incrementally, exploiting that every active sequence
//! grows by exactly one token per step. A token boundary therefore costs
//! O(admissions · log queue + distinct context lengths) instead of the
//! full ready-queue re-sort plus active-set re-scan of a naive loop:
//! million-request traces simulate in seconds (roughly 0.9M simulated
//! requests per wall-clock second on a backlogged 100k-request Poisson
//! trace; see the repo-root `BENCH_serving_sim.json` trajectory and the
//! `serving_sim` criterion bench in `hermes-bench`). The pre-rewrite
//! sort-based loop is retained verbatim behind the `reference` cargo
//! feature (`reference::simulate_reference`) as a differential-testing
//! oracle: the `simulator_equivalence` suite holds the two to
//! bitwise-identical outcomes across every policy combination.
//!
//! # Cluster serving
//!
//! The loop body itself lives in [`ReplicaSim`], a resumable state machine
//! over one machine's scheduling state: callers [`inject`](ReplicaSim::inject)
//! requests, [`advance_to`](ReplicaSim::advance_to) a virtual time (the
//! replica processes exactly the token boundaries due by then, jumping idle
//! gaps without overshooting), and [`simulate`] is a thin single-replica
//! driver over it. [`ClusterSimulation`] advances N replicas on one shared
//! clock: each [`ReplicaSpec`] is its own machine — system kind, hardware
//! config and scheduler knobs, so a fleet can mix TensorRT GPU boxes with
//! Hermes NDP boxes — requests are sampled once from a fleet-wide scenario
//! and dispatched at arrival time by a [`RoutingPolicy`] (round-robin,
//! least-outstanding, KV-pressure or prefix-affinity), and scripted
//! [`ReplicaEvent`]s drain, fail and recover replicas mid-run, with the
//! work they hand back re-dispatched deterministically in request-id order
//! (restart with recompute; records keep their original arrival stamps, so
//! fleet latency percentiles charge failover to the requests it delayed).
//! [`simulate_cluster`] folds the fleet into a
//! [`ClusterReport`](hermes_core::ClusterReport): per-replica
//! [`ServingReport`](hermes_core::ServingReport)s plus merged fleet-wide
//! latency distributions, routing counters, SLO attainment and a
//! load-imbalance coefficient. The driver is deterministic end to end, and
//! a one-replica cluster reproduces [`simulate`] bitwise.
//!
//! # Example: Poisson load on Hermes
//!
//! ```
//! use hermes_core::{ArrivalProcess, SystemConfig, SystemKind, Workload};
//! use hermes_model::ModelId;
//! use hermes_serve::{simulate, ServingSimulation};
//!
//! let mut template = Workload::paper_default(ModelId::Opt13B);
//! template.prompt_len = 32;
//! template.gen_len = 8;
//!
//! let sim = ServingSimulation::new(
//!     template,
//!     ArrivalProcess::Poisson { rate: 2.0 },
//!     6,
//! );
//! let outcome = simulate(SystemKind::hermes(), &SystemConfig::paper_default(), &sim)?;
//!
//! assert_eq!(outcome.report.completed, 6);
//! assert!(outcome.report.ttft.p95 >= outcome.report.ttft.p50);
//! for record in &outcome.records {
//!     assert!(record.ttft() > 0.0 && record.e2e() >= record.ttft());
//! }
//! # Ok::<(), hermes_core::HermesError>(())
//! ```

pub mod arrival;
pub mod cluster;
pub mod kv;
pub(crate) mod prefix;
#[cfg(test)]
mod prefix_props;
pub mod queue;
#[cfg(feature = "reference")]
pub mod reference;
pub mod replica;
pub mod request;
pub mod scheduler;
pub mod simulator;
pub mod tallies;

pub use arrival::sample_arrival_times;
pub use cluster::{
    simulate_cluster, ClusterOutcome, ClusterSimulation, ClusterSimulator, ReplicaEvent,
    ReplicaSpec, RoutingPolicy,
};
pub use kv::KvPool;
pub use queue::{Rank, ReadyQueue};
#[cfg(feature = "reference")]
pub use reference::simulate_reference;
pub use replica::{BoundaryOutcome, ReplicaSim};
pub use request::{
    assign_request_classes, sample_request_lengths, sample_request_prefixes, RequestRecord,
    ServingRequest,
};
pub use scheduler::{
    request_kv_bytes, token_kv_bytes, AdmissionConfig, BatchingPolicy, KvAccounting,
    PreemptionPolicy, PrefillPolicy, PrefixCacheMode, SchedulingPolicy, DEFAULT_BLOCK_TOKENS,
};
pub use simulator::{simulate, ServingOutcome, ServingSimulation};

// Re-export the workload specs so downstream users need not name
// hermes-core for the common case.
pub use hermes_core::{
    ArrivalProcess, LengthDistribution, PrioritySpec, PromptSpec, RequestClass, RequestLength,
};
