//! Raw per-run tallies and the report folder: the bridge between a
//! simulation loop's accumulators and the aggregate [`ServingReport`].
//!
//! Both simulator loops — the event-heap replica core behind
//! [`simulate`](crate::simulator::simulate) and the feature-gated
//! sort-based reference oracle — accumulate the same raw tallies and fold
//! them through the crate-private `build_report`, so the two paths cannot
//! drift in how metrics are derived from identical records.
//!
//! The module also owns the **ordered float folds** ([`ordered_sum`],
//! [`ordered_mean`]) that lint rule S2 requires for float accumulation in
//! report folding: float addition is non-associative, so every accumulation
//! must commit to one explicit order (left-to-right over the given slice) to
//! keep reports byte-identical across runs and refactors.

use hermes_core::cast::{f64_from_u64, f64_from_usize, u64_from_usize};
use hermes_core::{
    ClassReport, DistributionStats, KvPoolReport, LatencyBreakdown, PrefixCacheReport,
    ServingReport, SessionSpec, SwapReport,
};

use crate::prefix::PrefixStats;
use crate::request::RequestRecord;
use crate::scheduler::PreemptionPolicy;
use crate::simulator::ServingSimulation;

/// Raw paged-pool tallies one simulation loop accumulated, folded into the
/// report's [`KvPoolReport`] by [`build_report`] — shared by the heap loop
/// and the reference oracle so the derived statistics cannot drift.
pub(crate) struct KvTallies {
    pub block_tokens: usize,
    pub block_bytes: u64,
    pub capacity_blocks: Option<u64>,
    pub peak_blocks: u64,
    /// Σ held blocks over priced steps.
    pub block_steps: u64,
    /// Σ stored context tokens over priced steps.
    pub used_token_steps: u64,
    /// Priced steps sampled.
    pub steps: u64,
}

/// Raw prefix-cache tallies one simulation loop accumulated, folded into
/// the report's [`PrefixCacheReport`] by [`build_report`] — shared by the
/// heap loop and the reference oracle so the derived statistics cannot
/// drift.
pub(crate) struct PrefixTallies {
    pub stats: PrefixStats,
    pub resident_blocks: u64,
    pub resident_tokens: u64,
    /// Prefill tokens actually charged to the cost model.
    pub recomputed_prefill_tokens: usize,
}

/// Raw swap-tier tallies one simulation loop accumulated (all zero when no
/// preemption fired), folded into the report's [`SwapReport`].
#[derive(Default, Clone, Copy)]
pub(crate) struct SwapTallies {
    pub swap_outs: usize,
    pub swap_ins: usize,
    pub swapped_out_bytes: u64,
    pub swapped_in_bytes: u64,
    pub seconds: f64,
}

/// The empirical offered rate of a sampled arrival trace: requests per
/// second over the span from the first to the last arrival (0 when the span
/// is empty, e.g. all-at-once).
pub(crate) fn empirical_rps(times: &[f64]) -> f64 {
    match (times.first(), times.last()) {
        (Some(&first), Some(&last)) if last > first => {
            f64_from_usize(times.len() - 1) / (last - first)
        }
        _ => 0.0,
    }
}

/// Sum float samples with an explicit left-to-right fold over the slice.
///
/// This is the shared accumulation primitive lint rule S2 points at: float
/// addition is non-associative, so report folding must commit to exactly one
/// evaluation order. A slice's order is deterministic, and the sequential
/// left fold here is the one order every caller gets — a refactor to a tree
/// or parallel reduction would round differently and break byte-identical
/// report serialization.
#[must_use]
pub fn ordered_sum(values: &[f64]) -> f64 {
    let mut acc = 0.0_f64;
    for v in values {
        acc += v;
    }
    acc
}

/// Mean of float samples via [`ordered_sum`]; 0.0 for an empty slice.
#[must_use]
pub fn ordered_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        ordered_sum(values) / f64_from_usize(values.len())
    }
}

/// Fold the simulation's raw tallies and per-request records into the
/// aggregate [`ServingReport`]. Shared by
/// [`simulate`](crate::simulator::simulate) and the sort-based reference
/// oracle, so the two paths cannot drift in how metrics are derived from
/// identical records.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    sim: &ServingSimulation,
    spec: &SessionSpec,
    times: &[f64],
    records: &[RequestRecord],
    clock: f64,
    completed: usize,
    generated_tokens: usize,
    breakdown: LatencyBreakdown,
    imbalance_sum: f64,
    imbalance_samples: usize,
    kv: Option<KvTallies>,
    swap: SwapTallies,
    prefix: Option<PrefixTallies>,
) -> ServingReport {
    let queue_delays: Vec<f64> = records.iter().map(RequestRecord::queue_delay).collect();
    let ttfts: Vec<f64> = records.iter().map(RequestRecord::ttft).collect();
    // Single-token requests have no inter-token gap; their degenerate 0.0
    // "TPOT" would drag the percentiles toward zero, so they are excluded
    // from the TPOT sample set (but kept in TTFT/e2e).
    let tpots: Vec<f64> = records
        .iter()
        .filter(|r| r.gen_len > 1)
        .map(RequestRecord::tpot)
        .collect();
    let e2es: Vec<f64> = records.iter().map(RequestRecord::e2e).collect();
    ServingReport {
        system: spec.system.clone(),
        policy: sim.policy.name().to_string(),
        prefill_policy: sim.prefill.name().to_string(),
        scheduling: sim.scheduling.name().to_string(),
        preemption_policy: sim.preemption.name().to_string(),
        num_requests: records.len(),
        completed,
        offered_rps: sim
            .arrival
            .offered_rps()
            .unwrap_or_else(|| empirical_rps(times)),
        makespan: clock,
        generated_tokens,
        breakdown,
        queue_delay: DistributionStats::from_samples(&queue_delays),
        ttft: DistributionStats::from_samples(&ttfts),
        tpot: DistributionStats::from_samples(&tpots),
        e2e: DistributionStats::from_samples(&e2es),
        dimm_imbalance: if imbalance_samples > 0 {
            imbalance_sum / f64_from_usize(imbalance_samples)
        } else {
            1.0
        },
        preemptions: records.iter().map(|r| r.preemptions).sum(),
        per_class: fold_class_reports(records),
        kv: kv.map(|t| {
            let mean_blocks = if t.steps > 0 {
                f64_from_u64(t.block_steps) / f64_from_u64(t.steps)
            } else {
                0.0
            };
            let ratio_of = |blocks: f64| {
                t.capacity_blocks.map(|cap| {
                    if cap > 0 {
                        blocks / f64_from_u64(cap)
                    } else {
                        0.0
                    }
                })
            };
            KvPoolReport {
                block_tokens: t.block_tokens,
                block_bytes: t.block_bytes,
                capacity_blocks: t.capacity_blocks,
                peak_blocks: t.peak_blocks,
                mean_blocks,
                utilization: ratio_of(mean_blocks),
                peak_utilization: ratio_of(f64_from_u64(t.peak_blocks)),
                fragmentation: if t.block_steps > 0 {
                    1.0 - f64_from_u64(t.used_token_steps)
                        / f64_from_u64(t.block_steps * u64_from_usize(t.block_tokens))
                } else {
                    0.0
                },
            }
        }),
        swap: (sim.preemption == PreemptionPolicy::SwapOut).then_some(SwapReport {
            swap_outs: swap.swap_outs,
            swap_ins: swap.swap_ins,
            swapped_out_bytes: swap.swapped_out_bytes,
            swapped_in_bytes: swap.swapped_in_bytes,
            seconds: swap.seconds,
        }),
        prefix: prefix.map(|t| {
            let ttft_hit: Vec<f64> = records
                .iter()
                .filter(|r| r.reused_prefix_tokens > 0)
                .map(RequestRecord::ttft)
                .collect();
            let ttft_miss: Vec<f64> = records
                .iter()
                .filter(|r| r.reused_prefix_tokens == 0)
                .map(RequestRecord::ttft)
                .collect();
            PrefixCacheReport {
                lookups: t.stats.lookups,
                hits: t.stats.hits,
                hit_rate: if t.stats.lookups > 0 {
                    f64_from_usize(t.stats.hits) / f64_from_usize(t.stats.lookups)
                } else {
                    0.0
                },
                reused_prefill_tokens: t.stats.reused_tokens,
                recomputed_prefill_tokens: t.recomputed_prefill_tokens,
                insertions: t.stats.insertions,
                resident_blocks: t.resident_blocks,
                resident_tokens: t.resident_tokens,
                evicted_blocks: t.stats.evicted_blocks,
                ttft_hit: DistributionStats::from_samples(&ttft_hit),
                ttft_miss: DistributionStats::from_samples(&ttft_miss),
            }
        }),
    }
}

/// Fold the per-request records into per-priority-tier reports, sorted by
/// tier (most important first).
fn fold_class_reports(records: &[RequestRecord]) -> Vec<ClassReport> {
    let mut tiers: Vec<u8> = records.iter().map(|r| r.class.priority).collect();
    tiers.sort_unstable();
    tiers.dedup();
    tiers
        .into_iter()
        .map(|tier| {
            let members: Vec<&RequestRecord> = records
                .iter()
                .filter(|r| r.class.priority == tier)
                .collect();
            let queue_delays: Vec<f64> = members.iter().map(|r| r.queue_delay()).collect();
            let ttfts: Vec<f64> = members.iter().map(|r| r.ttft()).collect();
            let e2es: Vec<f64> = members.iter().map(|r| r.e2e()).collect();
            ClassReport {
                priority: tier,
                num_requests: members.len(),
                preemptions: members.iter().map(|r| r.preemptions).sum(),
                queue_delay: DistributionStats::from_samples(&queue_delays),
                ttft: DistributionStats::from_samples(&ttfts),
                e2e: DistributionStats::from_samples(&e2es),
                deadline_requests: members
                    .iter()
                    .filter(|r| r.class.ttft_deadline.is_some())
                    .count(),
                deadline_met: members
                    .iter()
                    .filter(|r| r.met_ttft_deadline() == Some(true))
                    .count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_sum_is_the_sequential_left_fold() {
        // With a large intermediate, left-to-right and right-to-left round
        // differently — the helper must match the sequential left fold
        // bitwise.
        let values = [0.1, 0.2, 1e16, 0.3, 0.4];
        let mut acc = 0.0_f64;
        for v in &values {
            acc += v;
        }
        assert_eq!(ordered_sum(&values).to_bits(), acc.to_bits());
        // And therefore equals the std left fold over the same slice.
        assert_eq!(
            ordered_sum(&values).to_bits(),
            values.iter().copied().fold(0.0_f64, |a, b| a + b).to_bits()
        );
    }

    #[test]
    fn ordered_mean_handles_empty() {
        assert_eq!(ordered_mean(&[]), 0.0);
        assert_eq!(ordered_mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn empirical_rps_spans_first_to_last() {
        assert_eq!(empirical_rps(&[]), 0.0);
        assert_eq!(empirical_rps(&[1.0]), 0.0);
        assert!((empirical_rps(&[0.0, 1.0, 2.0]) - 1.0).abs() < 1e-12);
    }
}
