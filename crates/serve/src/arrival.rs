//! Sampling [`ArrivalProcess`] specs into concrete arrival-time traces.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hermes_core::{ArrivalProcess, HermesError};

/// Draw one exponential inter-arrival gap with the given rate (events/s).
fn exponential_gap(rng: &mut ChaCha8Rng, rate: f64) -> f64 {
    // next_f64 is uniform in [0, 1), so 1 - u is in (0, 1] and the log is
    // finite.
    -(1.0 - rng.next_f64()).ln() / rate
}

/// Sample `count` arrival times (seconds since simulation start, sorted)
/// from an arrival spec. Fully deterministic: equal `(spec, count, seed)`
/// always produce the identical trace.
///
/// # Errors
///
/// Returns [`HermesError::InvalidWorkload`] when the spec fails
/// [`ArrivalProcess::validate`] or a [`ArrivalProcess::Trace`] length does
/// not match `count`.
pub fn sample_arrival_times(
    spec: &ArrivalProcess,
    count: usize,
    seed: u64,
) -> Result<Vec<f64>, HermesError> {
    spec.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match spec {
        ArrivalProcess::AllAtOnce => Ok(vec![0.0; count]),
        ArrivalProcess::Poisson { rate } => {
            let mut t = 0.0;
            Ok((0..count)
                .map(|_| {
                    t += exponential_gap(&mut rng, *rate);
                    t
                })
                .collect())
        }
        ArrivalProcess::Bursty { rate, burst } => {
            // Bursts of `burst` requests arrive together; burst epochs are a
            // Poisson process thinned to keep the long-run offered load at
            // `rate` requests/s.
            let burst_rate = rate / *burst as f64;
            let mut times = Vec::with_capacity(count);
            let mut t = 0.0;
            while times.len() < count {
                t += exponential_gap(&mut rng, burst_rate);
                for _ in 0..*burst {
                    if times.len() == count {
                        break;
                    }
                    times.push(t);
                }
            }
            Ok(times)
        }
        ArrivalProcess::Trace { times } => {
            if times.len() != count {
                return Err(HermesError::InvalidWorkload(format!(
                    "trace supplies {} arrival times but {} requests were asked for",
                    times.len(),
                    count
                )));
            }
            Ok(times.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at_once_is_all_zero() {
        assert_eq!(
            sample_arrival_times(&ArrivalProcess::AllAtOnce, 3, 7).unwrap(),
            vec![0.0; 3]
        );
    }

    #[test]
    fn poisson_is_sorted_deterministic_and_roughly_at_rate() {
        let spec = ArrivalProcess::Poisson { rate: 4.0 };
        let a = sample_arrival_times(&spec, 2000, 42).unwrap();
        let b = sample_arrival_times(&spec, 2000, 42).unwrap();
        assert_eq!(a, b, "equal seeds must give identical traces");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let span = a.last().unwrap();
        let empirical_rate = 2000.0 / span;
        assert!(
            (empirical_rate / 4.0 - 1.0).abs() < 0.15,
            "empirical rate {empirical_rate:.2} vs 4.0"
        );
        let c = sample_arrival_times(&spec, 2000, 43).unwrap();
        assert_ne!(a, c, "different seeds must give different traces");
    }

    #[test]
    fn bursts_arrive_together_at_the_offered_rate() {
        let spec = ArrivalProcess::Bursty {
            rate: 8.0,
            burst: 4,
        };
        let times = sample_arrival_times(&spec, 4000, 1).unwrap();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Full bursts share one timestamp.
        for chunk in times.chunks(4).take(999) {
            assert!(chunk.iter().all(|t| *t == chunk[0]));
        }
        let empirical_rate = 4000.0 / times.last().unwrap();
        assert!(
            (empirical_rate / 8.0 - 1.0).abs() < 0.2,
            "empirical rate {empirical_rate:.2} vs 8.0"
        );
    }

    #[test]
    fn traces_replay_verbatim_and_check_length() {
        let spec = ArrivalProcess::Trace {
            times: vec![0.0, 0.25, 9.0],
        };
        assert_eq!(
            sample_arrival_times(&spec, 3, 0).unwrap(),
            vec![0.0, 0.25, 9.0]
        );
        assert!(matches!(
            sample_arrival_times(&spec, 4, 0),
            Err(HermesError::InvalidWorkload(_))
        ));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(matches!(
            sample_arrival_times(&ArrivalProcess::Poisson { rate: -1.0 }, 4, 0),
            Err(HermesError::InvalidWorkload(_))
        ));
    }
}
