//! The discrete-event serving simulator: scenario description, validation,
//! and the single-replica driver.
//!
//! The actual event loop lives in [`crate::replica`] as the resumable
//! [`ReplicaSim`] state machine; [`simulate`] samples a scenario's arrivals
//! and requests, injects them into one replica and drives it to completion.
//! The multi-replica cluster driver in [`crate::cluster`] reuses the same
//! core, so one machine's behaviour is identical whether it serves alone or
//! inside a fleet.

use serde::{Deserialize, Serialize};

use hermes_core::{
    ArrivalProcess, HermesError, LengthDistribution, PrioritySpec, PromptSpec, ServingReport,
    SystemConfig, SystemKind, Workload,
};

use crate::arrival::sample_arrival_times;
use crate::replica::ReplicaSim;
use crate::request::{RequestRecord, ServingRequest};
use crate::scheduler::{
    AdmissionConfig, BatchingPolicy, KvAccounting, PreemptionPolicy, PrefillPolicy,
    PrefixCacheMode, SchedulingPolicy,
};

/// Salt mixed into the arrival seed to derive the length-sampling stream, so
/// one scenario seed governs both samplers without the draws being
/// correlated.
pub(crate) const LENGTH_SEED_SALT: u64 = 0x4c45_4e47_5448_2153; // "LENGTH!S"

/// Salt mixed into the arrival seed to derive the shared-prefix sampling
/// stream, independent of both the arrival and the length draws.
pub(crate) const PREFIX_SEED_SALT: u64 = 0x5052_4546_4958_2153; // "PREFIX!S"

/// One open-loop serving scenario: which requests arrive when, how long they
/// are, and how the scheduler batches and prefills them.
///
/// The `template` workload supplies the model, dataset, calibration seed and
/// the default per-request prompt/generation lengths; its `batch` field only
/// parameterises the engine's up-front validation (the actual batch
/// composition is decided by the scheduler at every token boundary), and its
/// lengths are overridden per request when `lengths` is not
/// [`LengthDistribution::Fixed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSimulation {
    /// Model, dataset, seed and default per-request sequence lengths.
    pub template: Workload,
    /// How requests arrive.
    pub arrival: ArrivalProcess,
    /// Number of requests offered.
    pub num_requests: usize,
    /// Seed of the arrival and length samplers (independent of the
    /// template's activation-trace seed).
    pub arrival_seed: u64,
    /// How the scheduler forms batches.
    pub policy: BatchingPolicy,
    /// Admission caps.
    pub admission: AdmissionConfig,
    /// How per-request prompt/generation lengths are drawn.
    pub lengths: LengthDistribution,
    /// How admitted prompts are prefilled: all at once, or chunked alongside
    /// the running decode batch.
    pub prefill: PrefillPolicy,
    /// How request classes (priority tier + optional TTFT deadline) are
    /// assigned.
    pub classes: PrioritySpec,
    /// How the ready queue is ordered at every token boundary.
    pub scheduling: SchedulingPolicy,
    /// Whether a blocked high-ranked request may evict lower-ranked active
    /// sequences.
    pub preemption: PreemptionPolicy,
    /// How shared prompt prefixes are assigned across requests.
    pub prompts: PromptSpec,
    /// Whether cached prompt prefixes are kept resident in the paged pool
    /// and reused across requests.
    pub prefix_cache: PrefixCacheMode,
}

impl ServingSimulation {
    /// A scenario with continuous batching, no admission caps, homogeneous
    /// request lengths and stall-the-world prefill.
    pub fn new(template: Workload, arrival: ArrivalProcess, num_requests: usize) -> Self {
        let arrival_seed = template.seed;
        ServingSimulation {
            template,
            arrival,
            num_requests,
            arrival_seed,
            policy: BatchingPolicy::Continuous,
            admission: AdmissionConfig::unlimited(),
            lengths: LengthDistribution::Fixed,
            prefill: PrefillPolicy::StallTheWorld,
            classes: PrioritySpec::Fixed,
            scheduling: SchedulingPolicy::Fcfs,
            preemption: PreemptionPolicy::None,
            prompts: PromptSpec::Unique,
            prefix_cache: PrefixCacheMode::Disabled,
        }
    }

    /// Same scenario with a different batching policy.
    pub fn with_policy(mut self, policy: BatchingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same scenario with different admission caps.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Same scenario with a different arrival-sampler seed.
    pub fn with_arrival_seed(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self
    }

    /// Same scenario with a different per-request length distribution.
    pub fn with_lengths(mut self, lengths: LengthDistribution) -> Self {
        self.lengths = lengths;
        self
    }

    /// Same scenario with a different prefill policy.
    pub fn with_prefill(mut self, prefill: PrefillPolicy) -> Self {
        self.prefill = prefill;
        self
    }

    /// Same scenario with a different class-assignment spec.
    pub fn with_classes(mut self, classes: PrioritySpec) -> Self {
        self.classes = classes;
        self
    }

    /// Same scenario with a different ready-queue scheduling policy.
    pub fn with_scheduling(mut self, scheduling: SchedulingPolicy) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Same scenario with a different preemption policy.
    pub fn with_preemption(mut self, preemption: PreemptionPolicy) -> Self {
        self.preemption = preemption;
        self
    }

    /// Same scenario with a different shared-prefix assignment.
    pub fn with_prompts(mut self, prompts: PromptSpec) -> Self {
        self.prompts = prompts;
        self
    }

    /// Same scenario with a different prefix-cache mode.
    pub fn with_prefix_cache(mut self, prefix_cache: PrefixCacheMode) -> Self {
        self.prefix_cache = prefix_cache;
        self
    }

    /// Validate the scenario's policy combination up front: admission caps,
    /// the prefill policy's internal consistency, bounded-paged-pool
    /// preemption and the cache-requires-paged constraint. Shared by every
    /// entry point — [`simulate`], [`ReplicaSim::new`] and the cluster
    /// driver — so a misconfigured replica fails with
    /// [`HermesError::InvalidConfig`] before any sampling or planning runs.
    ///
    /// # Errors
    ///
    /// [`HermesError::InvalidConfig`] describing the contradictory knobs.
    pub fn validate(&self) -> Result<(), HermesError> {
        self.admission.validate()?;
        self.prefill.validate()?;
        validate_paged_preemption(self)?;
        validate_prefix_cache(self)
    }
}

/// Everything one simulation produced: the aggregate report plus the
/// per-request lifecycle records it was folded from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Aggregate serving metrics.
    pub report: ServingReport,
    /// Lifecycle timestamps of every request, in arrival order.
    pub records: Vec<RequestRecord>,
}

/// The primary scheduling rank of a request under a policy (lower ranks are
/// served first; ties always fall back to arrival order). Preemption
/// compares primary ranks only, so it never evicts equal-ranked work: under
/// priority scheduling never within a tier, under EDF never within an equal
/// absolute deadline (EDF rank ignores the tier, so requests of one tier
/// *can* evict each other when their deadlines differ), and under FCFS
/// never at all.
pub(crate) fn primary_rank(scheduling: SchedulingPolicy, request: &ServingRequest) -> f64 {
    match scheduling {
        SchedulingPolicy::Fcfs => 0.0,
        SchedulingPolicy::Priority => f64::from(request.class.priority),
        SchedulingPolicy::Edf => request.absolute_deadline().unwrap_or(f64::INFINITY),
        // Affinity ranks depend on *other* requests' prefixes; they are
        // assigned by `request_ranks`, which never delegates here.
        SchedulingPolicy::PrefixAffinity => 0.0,
    }
}

/// The scheduling rank of every request at once. Per-request policies
/// delegate to [`primary_rank`]; [`SchedulingPolicy::PrefixAffinity`] ranks
/// each request by the arrival index of the *first* request sharing its
/// prefix, so same-prefix requests sit adjacently in the ready queue (the
/// tie-break is arrival order) and are co-batched whenever capacity admits
/// more than one — a warm prefix is then reused while its lease still pins
/// it. Prefix-less requests keep their own arrival slot relative to the
/// group leaders.
pub(crate) fn request_ranks(scheduling: SchedulingPolicy, requests: &[ServingRequest]) -> Vec<f64> {
    match scheduling {
        SchedulingPolicy::PrefixAffinity => {
            let mut leaders: std::collections::BTreeMap<&[u64], usize> =
                std::collections::BTreeMap::new();
            requests
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    if r.prefix.is_empty() {
                        i as f64
                    } else {
                        *leaders.entry(r.prefix.as_slice()).or_insert(i) as f64
                    }
                })
                .collect()
        }
        _ => requests
            .iter()
            .map(|r| primary_rank(scheduling, r))
            .collect(),
    }
}

/// Reject a prefix cache under reserve accounting: cached prefixes live in
/// paged-pool blocks, which only exist under [`KvAccounting::Paged`].
pub(crate) fn validate_prefix_cache(sim: &ServingSimulation) -> Result<(), HermesError> {
    if sim.prefix_cache != PrefixCacheMode::Disabled
        && !matches!(sim.admission.accounting, KvAccounting::Paged { .. })
    {
        return Err(HermesError::InvalidConfig(
            "the prefix cache stores reused prefixes in paged KV blocks; enable \
             KvAccounting::Paged or disable the cache"
                .into(),
        ));
    }
    Ok(())
}

/// The worst-case workloads the sampled requests imply, for up-front engine
/// re-validation: the request with the largest prompt and the one with the
/// largest total context (engine memory and validity checks can depend on
/// either), deduplicated, whenever the sampled lengths exceed the template's
/// respective values. Empty when the template plan already covers every
/// request. Both maxima fall out of one pass over the requests; ties keep
/// the *last* maximum, matching `Iterator::max_by_key`.
pub(crate) fn worst_case_bounds(template: &Workload, requests: &[ServingRequest]) -> Vec<Workload> {
    let mut extremes: Option<(&ServingRequest, &ServingRequest)> = None;
    for r in requests {
        extremes = Some(match extremes {
            None => (r, r),
            Some((max_prompt, max_total)) => (
                if r.prompt_len >= max_prompt.prompt_len {
                    r
                } else {
                    max_prompt
                },
                if r.prompt_len + r.gen_len >= max_total.prompt_len + max_total.gen_len {
                    r
                } else {
                    max_total
                },
            ),
        });
    }
    let Some((max_prompt, max_total)) = extremes else {
        return Vec::new();
    };
    if max_prompt.prompt_len <= template.prompt_len
        && max_total.prompt_len + max_total.gen_len <= template.prompt_len + template.gen_len
    {
        return Vec::new();
    }
    let mut lengths = vec![(max_prompt.prompt_len, max_prompt.gen_len)];
    let total = (max_total.prompt_len, max_total.gen_len);
    if !lengths.contains(&total) {
        lengths.push(total);
    }
    lengths
        .into_iter()
        .map(|(prompt_len, gen_len)| {
            let mut bound = template.clone();
            bound.prompt_len = prompt_len;
            bound.gen_len = gen_len;
            bound
        })
        .collect()
}

/// Simulate `kind` on `config` under an open-loop serving scenario.
///
/// The simulation is a deterministic discrete-event loop over a virtual
/// clock: at every token boundary queued arrivals are admitted (FCFS, up to
/// the scenario's caps — continuously, or only into an idle system under
/// static batching), newly admitted requests are prefilled, and one decode
/// step is priced for the *current* batch composition via the engine's cost
/// model. Under [`PrefillPolicy::StallTheWorld`] each admitted prompt is
/// prefilled in full (grouped by prompt length) before the next decode step;
/// under [`PrefillPolicy::Chunked`] at most a budget of prefill tokens per
/// boundary is co-scheduled with the decode step through
/// [`StepCostModel::chunked_step_cost`](hermes_core::StepCostModel::chunked_step_cost),
/// so in-flight sequences absorb chunk-sized slices instead of whole
/// prompts. Equal inputs always produce bitwise-identical outcomes.
///
/// A request's `admitted` timestamp is stamped when its own prefill work
/// starts (its prompt-length group's pass, or its first chunk), not when the
/// admission queue is drained, so queue delay includes waiting behind other
/// groups prefilled at the same boundary.
///
/// The loop itself lives in [`ReplicaSim`]: this driver samples the
/// scenario, injects every request into one replica and runs it dry, so the
/// single-replica and cluster paths share one machine model.
///
/// # Errors
///
/// Propagates validation errors from the engine, the arrival spec, the
/// length spec, the prefill policy and the admission caps, and returns
/// [`HermesError::InvalidConfig`] when the caps are too small to ever admit
/// a queued request.
pub fn simulate(
    kind: SystemKind,
    config: &SystemConfig,
    sim: &ServingSimulation,
) -> Result<ServingOutcome, HermesError> {
    sim.validate()?;
    let times = sample_arrival_times(&sim.arrival, sim.num_requests, sim.arrival_seed)?;
    let requests = ServingRequest::sample(
        &sim.template,
        &times,
        &sim.lengths,
        &sim.classes,
        &sim.prompts,
        sim.arrival_seed ^ LENGTH_SEED_SALT,
        sim.arrival_seed ^ PREFIX_SEED_SALT,
    )?;
    let mut replica = ReplicaSim::new(kind, config, sim.clone())?;
    replica.validate_requests(&requests)?;
    // Ranks are immutable per request (see `crate::queue`), so they are
    // computed once up front instead of per comparison.
    let ranks = request_ranks(sim.scheduling, &requests);
    for (request, rank) in requests.into_iter().zip(ranks) {
        replica.inject(request, rank);
    }
    replica.run_to_completion()?;
    Ok(replica.into_outcome())
}

/// Reject a bounded paged pool without a preemption policy: a sequence that
/// cannot take its next block mid-decode must be able to evict (or at least
/// self-evict); with [`PreemptionPolicy::None`] it would stall forever.
pub(crate) fn validate_paged_preemption(sim: &ServingSimulation) -> Result<(), HermesError> {
    if matches!(sim.admission.accounting, KvAccounting::Paged { .. })
        && sim.admission.kv_memory_bytes.is_some()
        && sim.preemption == PreemptionPolicy::None
    {
        return Err(HermesError::InvalidConfig(
            "a bounded paged KV pool requires a preemption policy (mid-decode block growth \
             must be able to evict); use EvictAndRefill or SwapOut, or lift kv_memory_bytes"
                .into(),
        ));
    }
    Ok(())
}

/// Reject any request whose full-context page count exceeds the pool: it
/// could never run to completion and would preempt forever.
pub(crate) fn validate_paged_capacity(
    block_tokens: usize,
    capacity_blocks: Option<u64>,
    requests: &[ServingRequest],
    sim: &ServingSimulation,
) -> Result<(), HermesError> {
    let Some(cap) = capacity_blocks else {
        return Ok(());
    };
    for (idx, r) in requests.iter().enumerate() {
        let need = (r.prompt_len + r.gen_len).div_ceil(block_tokens) as u64;
        if need > cap {
            return Err(HermesError::InvalidConfig(format!(
                "request {idx} needs {need} KV blocks at full context but the paged pool \
                 holds {cap} (block_tokens {block_tokens}, kv budget {:?})",
                sim.admission.kv_memory_bytes
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
#[path = "simulator_tests.rs"]
mod tests;
