//! The discrete-event serving simulator: a virtual clock driving arrivals,
//! admission, prefill (stall-the-world or chunked) and shared decode steps
//! through a planned engine's [`StepCostModel`](hermes_core::StepCostModel).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::ops::Bound;

use serde::{Deserialize, Serialize};

use hermes_core::{
    ArrivalProcess, BatchState, ClassReport, DistributionStats, HermesError, KvPoolReport,
    LatencyBreakdown, LengthDistribution, PrefillChunk, PrefixCacheReport, PrioritySpec,
    PromptSpec, ServingReport, SessionSpec, SwapReport, SystemConfig, SystemKind, Workload,
};

use crate::arrival::sample_arrival_times;
use crate::kv::KvPool;
use crate::prefix::{PrefixCache, PrefixLease, PrefixStats};
use crate::queue::{Rank, ReadyQueue};
use crate::request::{RequestRecord, ServingRequest};
use crate::scheduler::{
    request_kv_bytes, token_kv_bytes, AdmissionConfig, BatchingPolicy, KvAccounting,
    PreemptionPolicy, PrefillPolicy, PrefixCacheMode, SchedulingPolicy,
};

/// Salt mixed into the arrival seed to derive the length-sampling stream, so
/// one scenario seed governs both samplers without the draws being
/// correlated.
pub(crate) const LENGTH_SEED_SALT: u64 = 0x4c45_4e47_5448_2153; // "LENGTH!S"

/// Salt mixed into the arrival seed to derive the shared-prefix sampling
/// stream, independent of both the arrival and the length draws.
pub(crate) const PREFIX_SEED_SALT: u64 = 0x5052_4546_4958_2153; // "PREFIX!S"

/// One open-loop serving scenario: which requests arrive when, how long they
/// are, and how the scheduler batches and prefills them.
///
/// The `template` workload supplies the model, dataset, calibration seed and
/// the default per-request prompt/generation lengths; its `batch` field only
/// parameterises the engine's up-front validation (the actual batch
/// composition is decided by the scheduler at every token boundary), and its
/// lengths are overridden per request when `lengths` is not
/// [`LengthDistribution::Fixed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSimulation {
    /// Model, dataset, seed and default per-request sequence lengths.
    pub template: Workload,
    /// How requests arrive.
    pub arrival: ArrivalProcess,
    /// Number of requests offered.
    pub num_requests: usize,
    /// Seed of the arrival and length samplers (independent of the
    /// template's activation-trace seed).
    pub arrival_seed: u64,
    /// How the scheduler forms batches.
    pub policy: BatchingPolicy,
    /// Admission caps.
    pub admission: AdmissionConfig,
    /// How per-request prompt/generation lengths are drawn.
    pub lengths: LengthDistribution,
    /// How admitted prompts are prefilled: all at once, or chunked alongside
    /// the running decode batch.
    pub prefill: PrefillPolicy,
    /// How request classes (priority tier + optional TTFT deadline) are
    /// assigned.
    pub classes: PrioritySpec,
    /// How the ready queue is ordered at every token boundary.
    pub scheduling: SchedulingPolicy,
    /// Whether a blocked high-ranked request may evict lower-ranked active
    /// sequences.
    pub preemption: PreemptionPolicy,
    /// How shared prompt prefixes are assigned across requests.
    pub prompts: PromptSpec,
    /// Whether cached prompt prefixes are kept resident in the paged pool
    /// and reused across requests.
    pub prefix_cache: PrefixCacheMode,
}

impl ServingSimulation {
    /// A scenario with continuous batching, no admission caps, homogeneous
    /// request lengths and stall-the-world prefill.
    pub fn new(template: Workload, arrival: ArrivalProcess, num_requests: usize) -> Self {
        let arrival_seed = template.seed;
        ServingSimulation {
            template,
            arrival,
            num_requests,
            arrival_seed,
            policy: BatchingPolicy::Continuous,
            admission: AdmissionConfig::unlimited(),
            lengths: LengthDistribution::Fixed,
            prefill: PrefillPolicy::StallTheWorld,
            classes: PrioritySpec::Fixed,
            scheduling: SchedulingPolicy::Fcfs,
            preemption: PreemptionPolicy::None,
            prompts: PromptSpec::Unique,
            prefix_cache: PrefixCacheMode::Disabled,
        }
    }

    /// Same scenario with a different batching policy.
    pub fn with_policy(mut self, policy: BatchingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same scenario with different admission caps.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Same scenario with a different arrival-sampler seed.
    pub fn with_arrival_seed(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self
    }

    /// Same scenario with a different per-request length distribution.
    pub fn with_lengths(mut self, lengths: LengthDistribution) -> Self {
        self.lengths = lengths;
        self
    }

    /// Same scenario with a different prefill policy.
    pub fn with_prefill(mut self, prefill: PrefillPolicy) -> Self {
        self.prefill = prefill;
        self
    }

    /// Same scenario with a different class-assignment spec.
    pub fn with_classes(mut self, classes: PrioritySpec) -> Self {
        self.classes = classes;
        self
    }

    /// Same scenario with a different ready-queue scheduling policy.
    pub fn with_scheduling(mut self, scheduling: SchedulingPolicy) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Same scenario with a different preemption policy.
    pub fn with_preemption(mut self, preemption: PreemptionPolicy) -> Self {
        self.preemption = preemption;
        self
    }

    /// Same scenario with a different shared-prefix assignment.
    pub fn with_prompts(mut self, prompts: PromptSpec) -> Self {
        self.prompts = prompts;
        self
    }

    /// Same scenario with a different prefix-cache mode.
    pub fn with_prefix_cache(mut self, prefix_cache: PrefixCacheMode) -> Self {
        self.prefix_cache = prefix_cache;
        self
    }
}

/// Everything one simulation produced: the aggregate report plus the
/// per-request lifecycle records it was folded from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Aggregate serving metrics.
    pub report: ServingReport,
    /// Lifecycle timestamps of every request, in arrival order.
    pub records: Vec<RequestRecord>,
}

/// Bookkeeping for one sequence currently holding a batch slot, stored by
/// request index in [`ActiveSet`].
///
/// The sequence's *current* context length is never stored: every active
/// sequence grows by exactly one token per decode step, so `context =
/// context_at_join + (step - join_step)`, and the `shift`
/// (`context_at_join - join_step`) is the per-sequence invariant that makes
/// the whole batch composition advance for free as the global step counter
/// ticks.
struct ActiveInfo {
    /// Join generation, for invalidating stale finish-heap entries after an
    /// eviction (a re-join pushes a fresh entry with a newer epoch).
    epoch: u64,
    /// Global step count when the sequence joined the decode batch.
    join_step: u64,
    /// `context_at_join - join_step`: the sequence's context at global step
    /// `s` is `shift + s` for as long as it stays active.
    shift: i64,
    /// KV bytes reserved by this sequence.
    kv_bytes: u64,
    /// Scheduling rank, kept for O(log n) removal from the rank index.
    rank: Rank,
}

/// The decode batch as indexed incremental state: O(log n) join/remove and
/// O(distinct context lengths) per-step snapshots, replacing the per-step
/// linear rebuild of the sort-based scheduler.
///
/// Three indexes share the per-request [`ActiveInfo`] slab:
/// - `groups` counts sequences per context *shift*, so the batch
///   composition for [`BatchState::from_groups`] falls out of an in-order
///   walk without touching individual sequences (all contexts advance
///   together with the step counter);
/// - `by_rank` orders active sequences by scheduling rank for
///   worst-ranked-first victim selection under preemption;
/// - `finish` is the event heap of completion steps, validated lazily
///   against each sequence's `epoch` so evictions need not search the heap.
struct ActiveSet {
    /// Per-request active-sequence state (`None` when not decoding).
    info: Vec<Option<ActiveInfo>>,
    /// Number of active sequences.
    count: usize,
    /// Sequences per context shift (see [`ActiveInfo::shift`]).
    groups: BTreeMap<i64, usize>,
    /// Active sequences ordered by (rank, request index).
    by_rank: BTreeSet<(Rank, usize)>,
    /// Completion events: (finish step, request index, join epoch).
    finish: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Next join epoch.
    next_epoch: u64,
}

impl ActiveSet {
    fn new(num_requests: usize) -> Self {
        ActiveSet {
            info: (0..num_requests).map(|_| None).collect(),
            count: 0,
            groups: BTreeMap::new(),
            by_rank: BTreeSet::new(),
            finish: BinaryHeap::new(),
            next_epoch: 0,
        }
    }

    fn len(&self) -> usize {
        self.count
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn contains(&self, idx: usize) -> bool {
        self.info[idx].is_some()
    }

    /// Join the decode batch at global step `step` with `context` tokens of
    /// context and `remaining` tokens still to generate.
    fn join(
        &mut self,
        idx: usize,
        context: usize,
        remaining: usize,
        kv_bytes: u64,
        rank: f64,
        step: u64,
    ) {
        debug_assert!(self.info[idx].is_none(), "request {idx} already active");
        debug_assert!(
            remaining > 0,
            "request {idx} joined with nothing to generate"
        );
        let shift = context as i64 - step as i64;
        let finish_step = step + remaining as u64;
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        *self.groups.entry(shift).or_insert(0) += 1;
        self.by_rank.insert((Rank(rank), idx));
        self.finish.push(Reverse((finish_step, idx, epoch)));
        self.info[idx] = Some(ActiveInfo {
            epoch,
            join_step: step,
            shift,
            kv_bytes,
            rank: Rank(rank),
        });
        self.count += 1;
    }

    /// Remove an active sequence (eviction or completion), returning its
    /// bookkeeping. Its finish-heap entry is left behind and invalidated by
    /// the epoch check in [`ActiveSet::drain_finished`].
    fn remove(&mut self, idx: usize) -> ActiveInfo {
        let info = self.info[idx].take().expect("request not active");
        match self.groups.get_mut(&info.shift) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.groups.remove(&info.shift);
            }
        }
        self.by_rank.remove(&(info.rank, idx));
        self.count -= 1;
        info
    }

    /// The current batch composition, assembled from the group index in
    /// O(distinct context lengths).
    fn batch_state(&self, step: u64) -> BatchState {
        BatchState::from_groups(
            self.groups
                .iter()
                .map(|(&shift, &count)| ((shift + step as i64) as usize, count))
                .collect(),
        )
    }

    /// Active sequences strictly outranked by `rank`, worst-ranked first
    /// (latest arrival first within a rank) — the victim candidate order of
    /// [`PreemptionPolicy::EvictAndRefill`].
    fn victims_outranking(&self, rank: f64) -> impl Iterator<Item = usize> + '_ {
        self.by_rank
            .range((Bound::Excluded((Rank(rank), usize::MAX)), Bound::Unbounded))
            .rev()
            .map(|&(_, idx)| idx)
    }

    /// Pop every sequence whose last token was generated by global step
    /// `step`, invoking `on_finish` with its bookkeeping. Stale entries of
    /// evicted epochs are discarded.
    fn drain_finished(&mut self, step: u64, mut on_finish: impl FnMut(usize, ActiveInfo)) {
        while let Some(&Reverse((finish_step, idx, epoch))) = self.finish.peek() {
            if finish_step > step {
                break;
            }
            self.finish.pop();
            if self.info[idx].as_ref().is_some_and(|i| i.epoch == epoch) {
                let info = self.remove(idx);
                on_finish(idx, info);
            }
        }
    }
}

/// A sequence admitted under chunked prefill whose prompt is still being
/// processed. It holds its KV reservation but does not join the decode batch
/// until the prompt completes.
struct PrefillingSequence {
    /// Index into the request/record vectors.
    idx: usize,
    /// Prefill tokens to process before the sequence may decode: the prompt,
    /// plus — after a preemption — the tokens already generated, which
    /// restart-with-recompute re-prefills.
    target: usize,
    /// Prefill tokens processed so far.
    done: usize,
    /// Whether the first chunk has been scheduled (admission is stamped when
    /// it is).
    started: bool,
}

/// The primary scheduling rank of a request under a policy (lower ranks are
/// served first; ties always fall back to arrival order). Preemption
/// compares primary ranks only, so it never evicts equal-ranked work: under
/// priority scheduling never within a tier, under EDF never within an equal
/// absolute deadline (EDF rank ignores the tier, so requests of one tier
/// *can* evict each other when their deadlines differ), and under FCFS
/// never at all.
pub(crate) fn primary_rank(scheduling: SchedulingPolicy, request: &ServingRequest) -> f64 {
    match scheduling {
        SchedulingPolicy::Fcfs => 0.0,
        SchedulingPolicy::Priority => f64::from(request.class.priority),
        SchedulingPolicy::Edf => request.absolute_deadline().unwrap_or(f64::INFINITY),
        // Affinity ranks depend on *other* requests' prefixes; they are
        // assigned by `request_ranks`, which never delegates here.
        SchedulingPolicy::PrefixAffinity => 0.0,
    }
}

/// The scheduling rank of every request at once. Per-request policies
/// delegate to [`primary_rank`]; [`SchedulingPolicy::PrefixAffinity`] ranks
/// each request by the arrival index of the *first* request sharing its
/// prefix, so same-prefix requests sit adjacently in the ready queue (the
/// tie-break is arrival order) and are co-batched whenever capacity admits
/// more than one — a warm prefix is then reused while its lease still pins
/// it. Prefix-less requests keep their own arrival slot relative to the
/// group leaders.
pub(crate) fn request_ranks(scheduling: SchedulingPolicy, requests: &[ServingRequest]) -> Vec<f64> {
    match scheduling {
        SchedulingPolicy::PrefixAffinity => {
            let mut leaders: std::collections::HashMap<&[u64], usize> =
                std::collections::HashMap::new();
            requests
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    if r.prefix.is_empty() {
                        i as f64
                    } else {
                        *leaders.entry(r.prefix.as_slice()).or_insert(i) as f64
                    }
                })
                .collect()
        }
        _ => requests
            .iter()
            .map(|r| primary_rank(scheduling, r))
            .collect(),
    }
}

/// Reject a prefix cache under reserve accounting: cached prefixes live in
/// paged-pool blocks, which only exist under [`KvAccounting::Paged`].
pub(crate) fn validate_prefix_cache(sim: &ServingSimulation) -> Result<(), HermesError> {
    if sim.prefix_cache != PrefixCacheMode::Disabled
        && !matches!(sim.admission.accounting, KvAccounting::Paged { .. })
    {
        return Err(HermesError::InvalidConfig(
            "the prefix cache stores reused prefixes in paged KV blocks; enable \
             KvAccounting::Paged or disable the cache"
                .into(),
        ));
    }
    Ok(())
}

/// The worst-case workloads the sampled requests imply, for up-front engine
/// re-validation: the request with the largest prompt and the one with the
/// largest total context (engine memory and validity checks can depend on
/// either), deduplicated, whenever the sampled lengths exceed the template's
/// respective values. Empty when the template plan already covers every
/// request. Both maxima fall out of one pass over the requests; ties keep
/// the *last* maximum, matching `Iterator::max_by_key`.
pub(crate) fn worst_case_bounds(template: &Workload, requests: &[ServingRequest]) -> Vec<Workload> {
    let mut extremes: Option<(&ServingRequest, &ServingRequest)> = None;
    for r in requests {
        extremes = Some(match extremes {
            None => (r, r),
            Some((max_prompt, max_total)) => (
                if r.prompt_len >= max_prompt.prompt_len {
                    r
                } else {
                    max_prompt
                },
                if r.prompt_len + r.gen_len >= max_total.prompt_len + max_total.gen_len {
                    r
                } else {
                    max_total
                },
            ),
        });
    }
    let Some((max_prompt, max_total)) = extremes else {
        return Vec::new();
    };
    if max_prompt.prompt_len <= template.prompt_len
        && max_total.prompt_len + max_total.gen_len <= template.prompt_len + template.gen_len
    {
        return Vec::new();
    }
    let mut lengths = vec![(max_prompt.prompt_len, max_prompt.gen_len)];
    let total = (max_total.prompt_len, max_total.gen_len);
    if !lengths.contains(&total) {
        lengths.push(total);
    }
    lengths
        .into_iter()
        .map(|(prompt_len, gen_len)| {
            let mut bound = template.clone();
            bound.prompt_len = prompt_len;
            bound.gen_len = gen_len;
            bound
        })
        .collect()
}

/// The empirical offered rate of a sampled arrival trace: requests per
/// second over the span from the first to the last arrival (0 when the span
/// is empty, e.g. all-at-once).
fn empirical_rps(times: &[f64]) -> f64 {
    match (times.first(), times.last()) {
        (Some(&first), Some(&last)) if last > first => (times.len() - 1) as f64 / (last - first),
        _ => 0.0,
    }
}

/// Simulate `kind` on `config` under an open-loop serving scenario.
///
/// The simulation is a deterministic discrete-event loop over a virtual
/// clock: at every token boundary queued arrivals are admitted (FCFS, up to
/// the scenario's caps — continuously, or only into an idle system under
/// static batching), newly admitted requests are prefilled, and one decode
/// step is priced for the *current* batch composition via the engine's cost
/// model. Under [`PrefillPolicy::StallTheWorld`] each admitted prompt is
/// prefilled in full (grouped by prompt length) before the next decode step;
/// under [`PrefillPolicy::Chunked`] at most a budget of prefill tokens per
/// boundary is co-scheduled with the decode step through
/// [`StepCostModel::chunked_step_cost`](hermes_core::StepCostModel::chunked_step_cost),
/// so in-flight sequences absorb chunk-sized slices instead of whole
/// prompts. Equal inputs always produce bitwise-identical outcomes.
///
/// A request's `admitted` timestamp is stamped when its own prefill work
/// starts (its prompt-length group's pass, or its first chunk), not when the
/// admission queue is drained, so queue delay includes waiting behind other
/// groups prefilled at the same boundary.
///
/// # Errors
///
/// Propagates validation errors from the engine, the arrival spec, the
/// length spec, the prefill policy and the admission caps, and returns
/// [`HermesError::InvalidConfig`] when the caps are too small to ever admit
/// a queued request.
pub fn simulate(
    kind: SystemKind,
    config: &SystemConfig,
    sim: &ServingSimulation,
) -> Result<ServingOutcome, HermesError> {
    sim.admission.validate()?;
    sim.prefill.validate()?;
    validate_paged_preemption(sim)?;
    validate_prefix_cache(sim)?;
    let times = sample_arrival_times(&sim.arrival, sim.num_requests, sim.arrival_seed)?;
    let requests = ServingRequest::sample(
        &sim.template,
        &times,
        &sim.lengths,
        &sim.classes,
        &sim.prompts,
        sim.arrival_seed ^ LENGTH_SEED_SALT,
        sim.arrival_seed ^ PREFIX_SEED_SALT,
    )?;
    let engine = kind.engine(config);
    let mut plan = engine.plan(&sim.template)?;

    // The template plan only validated the template's lengths; sampled
    // per-request lengths can exceed them. Engine validity checks can depend
    // on the prompt length and on the total context independently, so both
    // the max-prompt and the max-total request are re-validated whenever
    // either exceeds the template's respective value — a request with a
    // larger prompt but smaller total must not slip through. The engine is
    // built once and re-used for the bound plans.
    for bound in worst_case_bounds(&sim.template, &requests) {
        engine.plan(&bound)?;
    }

    let kv_bytes_per_request: Vec<u64> = requests
        .iter()
        .map(|r| request_kv_bytes(&sim.template, r.prompt_len, r.gen_len))
        .collect();
    // Paged accounting: the block pool requests are charged against. Under
    // reserve accounting this stays `None` and the byte-counter path below
    // is untouched (bitwise-identical to the pre-paging simulator).
    let token_bytes = token_kv_bytes(&sim.template);
    let paged_block_tokens = match sim.admission.accounting {
        KvAccounting::Paged { block_tokens } => Some(block_tokens),
        KvAccounting::Reserve => None,
    };
    let mut pool: Option<KvPool> = paged_block_tokens.map(|bt| {
        let block_bytes = bt as u64 * token_bytes;
        let capacity = sim.admission.kv_memory_bytes.map(|b| b / block_bytes);
        KvPool::new(bt, block_bytes, capacity, requests.len())
    });
    if let Some(pool) = &pool {
        validate_paged_capacity(pool.block_tokens(), pool.capacity_blocks(), &requests, sim)?;
    }
    // The radix cache of resident prompt prefixes, sharing the paged pool's
    // blocks with the active sequences. `None` leaves every cache-aware
    // formula below at its covered-nothing value, bitwise-identical to the
    // cache-less simulator.
    let mut cache: Option<PrefixCache> = match sim.prefix_cache {
        PrefixCacheMode::Disabled => None,
        PrefixCacheMode::Lru => Some(PrefixCache::new(
            paged_block_tokens.expect("prefix cache validated to require paged accounting"),
        )),
    };
    // Ranks are immutable per request (see `crate::queue`), so they are
    // computed once up front instead of per comparison.
    let ranks: Vec<f64> = request_ranks(sim.scheduling, &requests);
    let mut records: Vec<RequestRecord> = requests
        .iter()
        .map(|r| RequestRecord {
            id: r.id,
            arrival: r.arrival,
            admitted: 0.0,
            first_token: 0.0,
            completed: 0.0,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            class: r.class,
            preemptions: 0,
            reused_prefix_tokens: 0,
        })
        .collect();

    let mut clock = 0.0f64;
    // Decode steps priced so far: the virtual event counter every
    // [`ActiveSet`] invariant is keyed on.
    let mut step: u64 = 0;
    let mut next_arrival = 0usize;
    let mut ready = ReadyQueue::new();
    let mut active = ActiveSet::new(requests.len());
    let mut prefilling: Vec<PrefillingSequence> = Vec::new();
    let mut active_kv_bytes = 0u64;
    // Tokens each request has generated so far; survives preemption, so a
    // resumed request re-prefills its progress (restart with recompute) and
    // only decodes the remainder. Updated lazily, when a sequence *leaves*
    // the active set (finish or eviction) — while active its progress is
    // implied by the step counter.
    let mut generated: Vec<usize> = vec![0; requests.len()];
    // Whether each request's first admission has been stamped (re-admissions
    // after a preemption keep the original queueing delay).
    let mut ever_admitted: Vec<bool> = vec![false; requests.len()];
    // Joiners that have not yet generated their first token, to stamp
    // `first_token` after the next priced step without walking the batch.
    let mut pending_first_token: Vec<usize> = Vec::new();
    let mut breakdown = LatencyBreakdown::default();
    let mut imbalance_sum = 0.0;
    let mut imbalance_samples = 0usize;
    let mut generated_tokens = 0usize;
    let mut completed = 0usize;
    // Bytes each swapped-out victim is holding on the swap tier, awaiting
    // the swap-in on resume (`None` while resident). Only SwapOut sets it.
    let mut swapped: Vec<Option<u64>> = vec![None; requests.len()];
    let mut swap = SwapTallies::default();
    // Paged-pool usage, sampled once per priced step: held blocks and the
    // context tokens actually stored in them (fragmentation is the gap).
    let mut kv_block_steps: u64 = 0;
    let mut kv_used_token_steps: u64 = 0;
    let mut kv_steps: u64 = 0;
    // Running sum of the prefill targets of chunk-prefilling sequences:
    // their blocks are allocated for the whole target up front, and the
    // whole target counts as stored (prefill fills blocks within steps).
    let mut prefill_target_tokens: usize = 0;
    // Prefix-cache bookkeeping (all zero / `None` with the cache disabled).
    // `covered[idx]` is the leading context run request `idx` stores in
    // cache blocks instead of its own pages (capacity accounting);
    // `reused[idx]` is the part of that run whose KV already existed at
    // admission and whose prefill is therefore skipped. They differ only
    // for an inserting request, which funds and fills cache blocks for its
    // unmatched cacheable run: that run is cache-resident (covered) but
    // the request still computes it (not reused). `lease[idx]` pins the
    // request's cached path while it is in flight (kept across a swap-out,
    // released on completion or an evict-and-refill preemption).
    let mut covered: Vec<usize> = vec![0; requests.len()];
    let mut reused: Vec<usize> = vec![0; requests.len()];
    let mut lease: Vec<Option<PrefixLease>> = vec![None; requests.len()];
    // Σ covered tokens over *active* (decoding) sequences, maintained at
    // join/remove so the per-step KV sample does not rescan the batch.
    let mut active_covered_tokens: u64 = 0;
    // Prefill tokens actually recomputed (charged to the cost model), the
    // complement of the cache's reused-token tally.
    let mut recomputed_prefill_tokens: usize = 0;
    // This boundary's prefill chunks, hoisted out of the loop so the hot
    // path reuses one allocation.
    let mut chunks: Vec<PrefillChunk> = Vec::new();

    // Shared eviction bookkeeping of the admission scan and the paged
    // growth pass: release the victim's seat and KV, record its progress,
    // and — under SwapOut — page its held KV out to the swap tier, priced
    // through the engine's swap-cost hook.
    macro_rules! evict {
        ($victim:expr) => {{
            let victim = $victim;
            let info = active.remove(victim);
            generated[victim] += (step - info.join_step) as usize;
            records[victim].preemptions += 1;
            active_covered_tokens -= covered[victim] as u64;
            let held_bytes = match pool.as_mut() {
                Some(pool) => pool.release(victim) * pool.block_bytes(),
                None => {
                    active_kv_bytes -= info.kv_bytes;
                    (requests[victim].prompt_len + generated[victim]) as u64 * token_bytes
                }
            };
            if sim.preemption == PreemptionPolicy::SwapOut {
                // Only the victim's own pages travel to the swap tier; its
                // covered prefix stays resident in the cache, pinned by the
                // lease it keeps until completion.
                let cost = plan.cost.swap_cost(held_bytes);
                clock += cost;
                breakdown.communication += cost;
                swap.seconds += cost;
                swap.swap_outs += 1;
                swap.swapped_out_bytes += held_bytes;
                swapped[victim] = Some(held_bytes);
            } else {
                // Restart-with-recompute drops the victim's cache claim;
                // its re-admission consults the cache afresh.
                if let (Some(cache), Some(l)) = (cache.as_mut(), lease[victim].take()) {
                    cache.release(l);
                }
                covered[victim] = 0;
                reused[victim] = 0;
            }
            ready.push(ranks[victim], victim);
        }};
    }

    loop {
        // 1. Pull every request that has arrived by now into the queue.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= clock {
            ready.push(ranks[next_arrival], next_arrival);
            next_arrival += 1;
        }

        // 2. Admit from the queue at this token boundary, in scheduling
        // order (FCFS / priority / EDF — arrival order within a rank).
        // Admission reserves the request's KV budget and batch slot; the
        // `admitted` timestamp is stamped later, when its prefill work
        // actually starts. When the best-ranked waiter does not fit and
        // preemption is on, strictly lower-ranked active sequences are
        // evicted (worst-ranked first) until it does.
        let may_admit = match sim.policy {
            BatchingPolicy::Continuous => true,
            BatchingPolicy::Static => active.is_empty() && prefilling.is_empty(),
        };
        let mut admitted: Vec<usize> = Vec::new();
        if may_admit {
            while let Some(idx) = ready.peek() {
                // `active_kv_bytes` (reserve) / the pool's held blocks
                // (paged) already include the requests admitted at this
                // boundary, so the caps see the whole provisional batch.
                // Paged accounting charges only the blocks for the
                // request's *current* context (prompt plus generated so
                // far) plus one write slot for the next decoded token, not
                // its worst-case footprint. The write slot guarantees an
                // admitted sequence generates at least one token before it
                // can need to grow — without it, a sequence rejoining with
                // its context exactly at a block boundary would be a grower
                // at its very next boundary and could self-evict in a
                // zero-progress admit/evict livelock.
                let kv = kv_bytes_per_request[idx];
                let seats = active.len() + prefilling.len() + admitted.len();
                if sim.prefix_cache != PrefixCacheMode::Disabled {
                    // Cache-aware paged admission. A fresh admission (or an
                    // evict-and-refill re-admission, whose claim was
                    // dropped) consults the cache: its matched run maps the
                    // resident blocks copy-free, and — when the unmatched
                    // cacheable remainder is insertable — the request also
                    // funds the blocks that will cache it for later
                    // requests. A resuming swap-out victim keeps the lease
                    // it never released and only needs pages for its
                    // uncovered remainder. Unpinned cache blocks off the
                    // matched path count as reclaimable capacity: they are
                    // evicted before an admission is declared infeasible.
                    let request = &requests[idx];
                    let ctx1 = request.prompt_len + generated[idx] + 1;
                    let bt = paged_block_tokens.expect("cache requires paged accounting");
                    let resumed = swapped[idx].is_some();
                    let c = cache.as_ref().expect("cache mode");
                    let p = pool.as_ref().expect("cache requires a paged pool");
                    let cap = p.capacity_blocks().unwrap_or(u64::MAX);
                    let (lookup_len, plan) = if resumed {
                        (0, c.plan(&[]))
                    } else {
                        let cacheable = c.cacheable(request.prefix.len());
                        (cacheable, c.plan(&request.prefix[..cacheable]))
                    };
                    let do_insert = !resumed && plan.can_insert && plan.matched < lookup_len;
                    let target_covered = if resumed {
                        covered[idx]
                    } else if do_insert {
                        lookup_len
                    } else {
                        plan.matched
                    };
                    let insert_blocks = if do_insert {
                        ((lookup_len - plan.matched) / bt) as u64
                    } else {
                        0
                    };
                    let own = p.blocks_for_tokens(ctx1 - target_covered);
                    let extra = own + insert_blocks;
                    if sim.admission.admits(seats, 0, 0)
                        && p.used_blocks() + extra <= cap.saturating_add(plan.freeable_blocks)
                    {
                        ready.pop();
                        if !resumed {
                            let (l, matched) = cache
                                .as_mut()
                                .expect("cache mode")
                                .acquire(&request.prefix[..lookup_len]);
                            debug_assert_eq!(matched, plan.matched, "plan and acquire must agree");
                            lease[idx] = Some(l);
                            // Only the *matched* run skips prefill; an
                            // inserted run is cache-resident but this
                            // request still computes it (into the cache's
                            // blocks).
                            reused[idx] = matched;
                            if !ever_admitted[idx] {
                                records[idx].reused_prefix_tokens = matched;
                            }
                        }
                        let pool_mut = pool.as_mut().expect("cache requires a paged pool");
                        let shortfall = (pool_mut.used_blocks() + extra).saturating_sub(cap);
                        if shortfall > 0 {
                            let freed = cache.as_mut().expect("cache mode").evict_for(shortfall);
                            pool_mut.surrender_blocks(&freed);
                        }
                        if do_insert {
                            let ids = pool_mut.acquire_blocks(insert_blocks);
                            cache.as_mut().expect("cache mode").insert(
                                lease[idx].expect("lease acquired above"),
                                &request.prefix[plan.matched..lookup_len],
                                ids,
                            );
                        }
                        pool_mut.allocate(idx, own);
                        covered[idx] = target_covered;
                        admitted.push(idx);
                        continue;
                    }
                    if sim.preemption != PreemptionPolicy::None {
                        // Victim coverage is conservatively treated as
                        // unreclaimable — another in-flight lease may pin
                        // the same nodes — so only the victims' own pages
                        // and the already-unpinned cache blocks count.
                        let mut victims: Vec<usize> = Vec::new();
                        let mut freed = 0u64;
                        let mut feasible = false;
                        for victim in active.victims_outranking(ranks[idx]) {
                            freed += p.held(victim);
                            victims.push(victim);
                            if sim.admission.admits(seats - victims.len(), 0, 0)
                                && p.used_blocks() + extra
                                    <= cap
                                        .saturating_add(plan.freeable_blocks)
                                        .saturating_add(freed)
                            {
                                feasible = true;
                                break;
                            }
                        }
                        if feasible {
                            for victim in victims {
                                evict!(victim);
                            }
                            // Retry: the released leases and pages are
                            // re-planned from scratch.
                            continue;
                        }
                    }
                    break;
                }
                let need_blocks = pool
                    .as_ref()
                    .map(|p| p.blocks_for_tokens(requests[idx].prompt_len + generated[idx] + 1));
                let fits = match (&pool, need_blocks) {
                    (Some(pool), Some(need)) => {
                        sim.admission.admits(seats, 0, 0) && pool.fits(need)
                    }
                    _ => sim.admission.admits(seats, active_kv_bytes, kv),
                };
                if fits {
                    ready.pop();
                    match (pool.as_mut(), need_blocks) {
                        (Some(pool), Some(need)) => pool.allocate(idx, need),
                        _ => active_kv_bytes += kv,
                    }
                    admitted.push(idx);
                    continue;
                }
                if sim.preemption != PreemptionPolicy::None {
                    // Victim candidates: active sequences strictly outranked
                    // by the blocked waiter, worst-ranked first (latest
                    // arrival first within a rank), straight off the rank
                    // index. Sequences still prefilling under chunked
                    // prefill are not evicted. Take the smallest prefix
                    // that makes room, if any.
                    let mut victims: Vec<usize> = Vec::new();
                    let mut feasible = false;
                    match (&pool, need_blocks) {
                        (Some(pool), Some(need)) => {
                            let cap = pool.capacity_blocks().unwrap_or(u64::MAX);
                            let mut freed = 0u64;
                            for victim in active.victims_outranking(ranks[idx]) {
                                freed += pool.held(victim);
                                victims.push(victim);
                                if sim.admission.admits(seats - victims.len(), 0, 0)
                                    && pool.used_blocks() - freed + need <= cap
                                {
                                    feasible = true;
                                    break;
                                }
                            }
                        }
                        _ => {
                            let mut freed_kv = 0u64;
                            for victim in active.victims_outranking(ranks[idx]) {
                                freed_kv += kv_bytes_per_request[victim];
                                victims.push(victim);
                                if sim.admission.admits(
                                    seats - victims.len(),
                                    active_kv_bytes - freed_kv,
                                    kv,
                                ) {
                                    feasible = true;
                                    break;
                                }
                            }
                        }
                    }
                    if feasible {
                        for victim in victims {
                            evict!(victim);
                        }
                        // Retry the blocked waiter with the freed capacity
                        // (the victims it displaced cannot outrank it).
                        continue;
                    }
                }
                break;
            }
        }

        // 2.5 Swapped-out victims among this boundary's admissions resume
        // by paging their KV back in — no recompute: they skip prefill and
        // rejoin the decode batch right here, continuing where they
        // stopped. The swap-in leg is priced like the swap-out was.
        let admitted: Vec<usize> = admitted
            .into_iter()
            .filter(|&idx| {
                let Some(bytes) = swapped[idx].take() else {
                    return true;
                };
                let cost = plan.cost.swap_cost(bytes);
                clock += cost;
                breakdown.communication += cost;
                swap.seconds += cost;
                swap.swap_ins += 1;
                swap.swapped_in_bytes += bytes;
                let request = &requests[idx];
                active_covered_tokens += covered[idx] as u64;
                active.join(
                    idx,
                    request.prompt_len + generated[idx],
                    request.gen_len - generated[idx],
                    if pool.is_some() {
                        0
                    } else {
                        kv_bytes_per_request[idx]
                    },
                    ranks[idx],
                    step,
                );
                false
            })
            .collect();

        // 3. Hand the newly admitted requests to the prefill policy. A
        // request resumed after a preemption re-prefills its prompt *plus*
        // the tokens it already generated (restart with recompute), so its
        // effective prefill length is `prompt_len + generated` — minus the
        // reused run it maps from the prefix cache, whose KV already
        // existed at admission and is never recomputed.
        match sim.prefill {
            PrefillPolicy::StallTheWorld => {
                // Prefill whole prompts now, one pass per effective prefill
                // length (requests sharing a length are prefilled together,
                // so an all-at-once batch pays exactly the closed-loop
                // prefill). A fully-covered request prefills nothing and
                // charges nothing.
                if !admitted.is_empty() {
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
                    for &idx in &admitted {
                        let p = requests[idx].prompt_len + generated[idx] - reused[idx];
                        match groups.iter_mut().find(|(len, _)| *len == p) {
                            Some((_, members)) => members.push(idx),
                            None => groups.push((p, vec![idx])),
                        }
                    }
                    for (prefill_len, members) in groups {
                        // This group's prefill starts now, after every
                        // earlier group's pass has elapsed.
                        for &idx in &members {
                            if !ever_admitted[idx] {
                                records[idx].admitted = clock;
                                ever_admitted[idx] = true;
                            }
                        }
                        recomputed_prefill_tokens += prefill_len * members.len();
                        if prefill_len > 0 {
                            let cost = plan.cost.prefill_cost(prefill_len, members.len());
                            breakdown.prefill += cost;
                            clock += cost;
                        }
                    }
                    for idx in admitted {
                        let request = &requests[idx];
                        active_covered_tokens += covered[idx] as u64;
                        active.join(
                            idx,
                            request.prompt_len + generated[idx],
                            request.gen_len - generated[idx],
                            if pool.is_some() {
                                0
                            } else {
                                kv_bytes_per_request[idx]
                            },
                            ranks[idx],
                            step,
                        );
                        if generated[idx] == 0 {
                            pending_first_token.push(idx);
                        }
                    }
                }
            }
            PrefillPolicy::Chunked { .. } => {
                for idx in admitted {
                    let target = requests[idx].prompt_len + generated[idx] - reused[idx];
                    recomputed_prefill_tokens += target;
                    if target == 0 {
                        // Fully covered: nothing to prefill, join the decode
                        // batch at this very boundary.
                        if !ever_admitted[idx] {
                            records[idx].admitted = clock;
                            ever_admitted[idx] = true;
                        }
                        let request = &requests[idx];
                        active_covered_tokens += covered[idx] as u64;
                        active.join(
                            idx,
                            request.prompt_len + generated[idx],
                            request.gen_len - generated[idx],
                            0,
                            ranks[idx],
                            step,
                        );
                        if generated[idx] == 0 {
                            pending_first_token.push(idx);
                        }
                        continue;
                    }
                    prefill_target_tokens += target;
                    prefilling.push(PrefillingSequence {
                        idx,
                        target,
                        done: 0,
                        started: false,
                    });
                }
            }
        }

        // 4. Schedule this boundary's prefill chunks (FCFS across the
        // requests still prefilling, up to the policy's token budget).
        // Always empty under stall-the-world, which never populates
        // `prefilling`. The buffer is reused across boundaries; every
        // scheduled chunk is non-empty, so `chunks.len()` is also the
        // number of leading `prefilling` entries touched this boundary —
        // the only ones step 7 has to rescan for completion.
        chunks.clear();
        if let PrefillPolicy::Chunked {
            chunk_tokens,
            budget,
        } = sim.prefill
        {
            let mut budget_left = budget;
            for seq in prefilling.iter_mut() {
                if budget_left == 0 {
                    break;
                }
                let take = chunk_tokens.min(seq.target - seq.done).min(budget_left);
                if !seq.started {
                    if !ever_admitted[seq.idx] {
                        records[seq.idx].admitted = clock;
                        ever_admitted[seq.idx] = true;
                    }
                    seq.started = true;
                }
                chunks.push(PrefillChunk {
                    prompt_len: seq.target,
                    tokens: take,
                });
                seq.done += take;
                budget_left -= take;
            }
        }

        // 5. Nothing running and no prefill scheduled: jump to the next
        // arrival or finish. (`prefilling` is necessarily empty here — any
        // prefilling sequence would have scheduled a chunk.)
        if active.is_empty() && chunks.is_empty() {
            if let Some(head) = ready.peek() {
                // The queue head could not be admitted into an idle system:
                // the caps can never be satisfied.
                return Err(HermesError::InvalidConfig(format!(
                    "admission caps can never admit request {} (max_batch {:?}, kv budget {:?})",
                    head, sim.admission.max_batch, sim.admission.kv_memory_bytes
                )));
            }
            if next_arrival < requests.len() {
                clock = clock.max(requests[next_arrival].arrival);
                continue;
            }
            break;
        }

        // 5.5 Paged growth: a sequence whose held blocks no longer cover
        // its context plus the token this step decodes takes one more
        // block. Admission granted every sequence a write slot, so a
        // grower has always decoded at least one token since it was
        // (re)admitted — growth evictions therefore always follow real
        // progress and cannot livelock. Growers take their block in
        // scheduling-rank order; when the pool is full, each evicts the
        // worst strictly lower-ranked active victim — or itself, when none
        // exists (it cannot demand capacity from equal- or better-ranked
        // work).
        if paged_block_tokens.is_some() {
            let growers: Vec<usize> = active
                .by_rank
                .iter()
                .map(|&(_, idx)| idx)
                .filter(|&idx| {
                    let p = pool.as_ref().expect("paged pool");
                    let info = active.info[idx].as_ref().expect("rank index is active");
                    let context = (info.shift + step as i64) as usize;
                    p.held(idx) < p.blocks_for_tokens(context + 1 - covered[idx])
                })
                .collect();
            for grower in growers {
                // An earlier grower may have evicted this one.
                if !active.contains(grower) {
                    continue;
                }
                if pool.as_ref().expect("paged pool").fits(1) {
                    pool.as_mut().expect("paged pool").grow(grower);
                    continue;
                }
                // Unpinned cache blocks are reclaimed before any sequence
                // is preempted for a grower's block.
                if let Some(cache) = cache.as_mut() {
                    let p = pool.as_mut().expect("paged pool");
                    let cap = p.capacity_blocks().unwrap_or(u64::MAX);
                    let shortfall = (p.used_blocks() + 1).saturating_sub(cap);
                    let freed = cache.evict_for(shortfall);
                    p.surrender_blocks(&freed);
                    if p.fits(1) {
                        p.grow(grower);
                        continue;
                    }
                }
                let victim = active.victims_outranking(ranks[grower]).next();
                match victim {
                    Some(victim) => {
                        evict!(victim);
                        pool.as_mut().expect("paged pool").grow(grower);
                    }
                    None => evict!(grower),
                }
            }
            // Sample pool usage for the utilization/fragmentation stats:
            // held blocks vs. the context tokens stored in them (active
            // contexts before this step's token, plus the full targets of
            // chunk-prefilling sequences, whose blocks are held up front).
            // Covered runs are stored once, in the cache's resident blocks,
            // so they are subtracted from the active contexts and counted
            // through the cache instead.
            let pool_ref = pool.as_ref().expect("paged pool");
            kv_steps += 1;
            kv_block_steps += pool_ref.used_blocks();
            let active_tokens: u64 = active
                .groups
                .iter()
                .map(|(&shift, &count)| (shift + step as i64) as u64 * count as u64)
                .sum();
            kv_used_token_steps += active_tokens - active_covered_tokens
                + prefill_target_tokens as u64
                + cache.as_ref().map_or(0, |c| c.resident_tokens());
        }

        // 6. One shared step over the current batch composition, with any
        // scheduled prefill chunks piggybacked on it. The chunk-free path
        // prices through `decode_cost` directly, so stall-the-world
        // reproduces the closed-loop costs bitwise. The composition comes
        // straight off the active set's group index — O(distinct context
        // lengths), not O(batch).
        let batch = active.batch_state(step);
        let outcome = if chunks.is_empty() {
            plan.cost.decode_cost(&batch)
        } else {
            plan.cost.chunked_step_cost(&chunks, &batch)
        };
        breakdown = breakdown.merged(&outcome.latency);
        imbalance_sum += outcome.imbalance_sum;
        imbalance_samples += outcome.imbalance_samples;
        clock += outcome.latency.total();
        generated_tokens += active.len();
        step += 1;
        // First tokens land before completions so a single-token request
        // gets `first_token == completed`, exactly as the per-sequence walk
        // stamped them. A pending joiner evicted before its first step is
        // simply dropped here (still unstamped) and re-queued on rejoin.
        for &idx in &pending_first_token {
            if active.contains(idx) {
                records[idx].first_token = clock;
            }
        }
        pending_first_token.clear();
        active.drain_finished(step, |idx, info| {
            records[idx].completed = clock;
            completed += 1;
            match pool.as_mut() {
                Some(pool) => {
                    pool.release(idx);
                }
                None => active_kv_bytes -= info.kv_bytes,
            }
            generated[idx] += (step - info.join_step) as usize;
            // The covered run outlives the request: releasing the lease
            // leaves the prefix resident for later arrivals, reclaimable
            // only under pressure.
            active_covered_tokens -= covered[idx] as u64;
            if let (Some(cache), Some(l)) = (cache.as_mut(), lease[idx].take()) {
                cache.release(l);
            }
        });

        // 7. Prompts that completed this step join the decode batch at the
        // next token boundary. Only the sequences that received a chunk
        // this boundary — the first `chunks.len()` entries, since chunks
        // are handed out FCFS from the front — can have newly completed,
        // so the scan stops there instead of walking the whole set.
        let mut i = 0;
        let mut touched = chunks.len().min(prefilling.len());
        while i < touched {
            if prefilling[i].done == prefilling[i].target {
                touched -= 1;
                let seq = prefilling.remove(i);
                prefill_target_tokens -= seq.target;
                let request = &requests[seq.idx];
                active_covered_tokens += covered[seq.idx] as u64;
                active.join(
                    seq.idx,
                    seq.target + reused[seq.idx],
                    request.gen_len - generated[seq.idx],
                    if pool.is_some() {
                        0
                    } else {
                        kv_bytes_per_request[seq.idx]
                    },
                    ranks[seq.idx],
                    step,
                );
                if generated[seq.idx] == 0 {
                    pending_first_token.push(seq.idx);
                }
            } else {
                i += 1;
            }
        }
    }

    let kv_tallies = pool.as_ref().map(|pool| KvTallies {
        block_tokens: pool.block_tokens(),
        block_bytes: pool.block_bytes(),
        capacity_blocks: pool.capacity_blocks(),
        peak_blocks: pool.peak_blocks(),
        block_steps: kv_block_steps,
        used_token_steps: kv_used_token_steps,
        steps: kv_steps,
    });
    let prefix_tallies = cache.as_ref().map(|cache| PrefixTallies {
        stats: cache.stats(),
        resident_blocks: cache.resident_blocks(),
        resident_tokens: cache.resident_tokens(),
        recomputed_prefill_tokens,
    });
    let report = build_report(
        sim,
        &plan.spec,
        &times,
        &records,
        clock,
        completed,
        generated_tokens,
        breakdown,
        imbalance_sum,
        imbalance_samples,
        kv_tallies,
        swap,
        prefix_tallies,
    );
    Ok(ServingOutcome { report, records })
}

/// Reject a bounded paged pool without a preemption policy: a sequence that
/// cannot take its next block mid-decode must be able to evict (or at least
/// self-evict); with [`PreemptionPolicy::None`] it would stall forever.
pub(crate) fn validate_paged_preemption(sim: &ServingSimulation) -> Result<(), HermesError> {
    if matches!(sim.admission.accounting, KvAccounting::Paged { .. })
        && sim.admission.kv_memory_bytes.is_some()
        && sim.preemption == PreemptionPolicy::None
    {
        return Err(HermesError::InvalidConfig(
            "a bounded paged KV pool requires a preemption policy (mid-decode block growth \
             must be able to evict); use EvictAndRefill or SwapOut, or lift kv_memory_bytes"
                .into(),
        ));
    }
    Ok(())
}

/// Reject any request whose full-context page count exceeds the pool: it
/// could never run to completion and would preempt forever.
pub(crate) fn validate_paged_capacity(
    block_tokens: usize,
    capacity_blocks: Option<u64>,
    requests: &[ServingRequest],
    sim: &ServingSimulation,
) -> Result<(), HermesError> {
    let Some(cap) = capacity_blocks else {
        return Ok(());
    };
    for (idx, r) in requests.iter().enumerate() {
        let need = (r.prompt_len + r.gen_len).div_ceil(block_tokens) as u64;
        if need > cap {
            return Err(HermesError::InvalidConfig(format!(
                "request {idx} needs {need} KV blocks at full context but the paged pool \
                 holds {cap} (block_tokens {block_tokens}, kv budget {:?})",
                sim.admission.kv_memory_bytes
            )));
        }
    }
    Ok(())
}

/// Raw paged-pool tallies one simulation loop accumulated, folded into the
/// report's [`KvPoolReport`] by [`build_report`] — shared by the heap loop
/// and the reference oracle so the derived statistics cannot drift.
pub(crate) struct KvTallies {
    pub block_tokens: usize,
    pub block_bytes: u64,
    pub capacity_blocks: Option<u64>,
    pub peak_blocks: u64,
    /// Σ held blocks over priced steps.
    pub block_steps: u64,
    /// Σ stored context tokens over priced steps.
    pub used_token_steps: u64,
    /// Priced steps sampled.
    pub steps: u64,
}

/// Raw prefix-cache tallies one simulation loop accumulated, folded into
/// the report's [`PrefixCacheReport`] by [`build_report`] — shared by the
/// heap loop and the reference oracle so the derived statistics cannot
/// drift.
pub(crate) struct PrefixTallies {
    pub stats: PrefixStats,
    pub resident_blocks: u64,
    pub resident_tokens: u64,
    /// Prefill tokens actually charged to the cost model.
    pub recomputed_prefill_tokens: usize,
}

/// Raw swap-tier tallies one simulation loop accumulated (all zero when no
/// preemption fired), folded into the report's [`SwapReport`].
#[derive(Default, Clone, Copy)]
pub(crate) struct SwapTallies {
    pub swap_outs: usize,
    pub swap_ins: usize,
    pub swapped_out_bytes: u64,
    pub swapped_in_bytes: u64,
    pub seconds: f64,
}

/// Fold the simulation's raw tallies and per-request records into the
/// aggregate [`ServingReport`]. Shared by [`simulate`] and the sort-based
/// reference oracle, so the two paths cannot drift in how metrics are
/// derived from identical records.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    sim: &ServingSimulation,
    spec: &SessionSpec,
    times: &[f64],
    records: &[RequestRecord],
    clock: f64,
    completed: usize,
    generated_tokens: usize,
    breakdown: LatencyBreakdown,
    imbalance_sum: f64,
    imbalance_samples: usize,
    kv: Option<KvTallies>,
    swap: SwapTallies,
    prefix: Option<PrefixTallies>,
) -> ServingReport {
    let queue_delays: Vec<f64> = records.iter().map(RequestRecord::queue_delay).collect();
    let ttfts: Vec<f64> = records.iter().map(RequestRecord::ttft).collect();
    // Single-token requests have no inter-token gap; their degenerate 0.0
    // "TPOT" would drag the percentiles toward zero, so they are excluded
    // from the TPOT sample set (but kept in TTFT/e2e).
    let tpots: Vec<f64> = records
        .iter()
        .filter(|r| r.gen_len > 1)
        .map(RequestRecord::tpot)
        .collect();
    let e2es: Vec<f64> = records.iter().map(RequestRecord::e2e).collect();
    ServingReport {
        system: spec.system.clone(),
        policy: sim.policy.name().to_string(),
        prefill_policy: sim.prefill.name().to_string(),
        scheduling: sim.scheduling.name().to_string(),
        preemption_policy: sim.preemption.name().to_string(),
        num_requests: records.len(),
        completed,
        offered_rps: sim
            .arrival
            .offered_rps()
            .unwrap_or_else(|| empirical_rps(times)),
        makespan: clock,
        generated_tokens,
        breakdown,
        queue_delay: DistributionStats::from_samples(&queue_delays),
        ttft: DistributionStats::from_samples(&ttfts),
        tpot: DistributionStats::from_samples(&tpots),
        e2e: DistributionStats::from_samples(&e2es),
        dimm_imbalance: if imbalance_samples > 0 {
            imbalance_sum / imbalance_samples as f64
        } else {
            1.0
        },
        preemptions: records.iter().map(|r| r.preemptions).sum(),
        per_class: fold_class_reports(records),
        kv: kv.map(|t| {
            let mean_blocks = if t.steps > 0 {
                t.block_steps as f64 / t.steps as f64
            } else {
                0.0
            };
            let ratio_of = |blocks: f64| {
                t.capacity_blocks
                    .map(|cap| if cap > 0 { blocks / cap as f64 } else { 0.0 })
            };
            KvPoolReport {
                block_tokens: t.block_tokens,
                block_bytes: t.block_bytes,
                capacity_blocks: t.capacity_blocks,
                peak_blocks: t.peak_blocks,
                mean_blocks,
                utilization: ratio_of(mean_blocks),
                peak_utilization: ratio_of(t.peak_blocks as f64),
                fragmentation: if t.block_steps > 0 {
                    1.0 - t.used_token_steps as f64 / (t.block_steps * t.block_tokens as u64) as f64
                } else {
                    0.0
                },
            }
        }),
        swap: (sim.preemption == PreemptionPolicy::SwapOut).then_some(SwapReport {
            swap_outs: swap.swap_outs,
            swap_ins: swap.swap_ins,
            swapped_out_bytes: swap.swapped_out_bytes,
            swapped_in_bytes: swap.swapped_in_bytes,
            seconds: swap.seconds,
        }),
        prefix: prefix.map(|t| {
            let ttft_hit: Vec<f64> = records
                .iter()
                .filter(|r| r.reused_prefix_tokens > 0)
                .map(RequestRecord::ttft)
                .collect();
            let ttft_miss: Vec<f64> = records
                .iter()
                .filter(|r| r.reused_prefix_tokens == 0)
                .map(RequestRecord::ttft)
                .collect();
            PrefixCacheReport {
                lookups: t.stats.lookups,
                hits: t.stats.hits,
                hit_rate: if t.stats.lookups > 0 {
                    t.stats.hits as f64 / t.stats.lookups as f64
                } else {
                    0.0
                },
                reused_prefill_tokens: t.stats.reused_tokens,
                recomputed_prefill_tokens: t.recomputed_prefill_tokens,
                insertions: t.stats.insertions,
                resident_blocks: t.resident_blocks,
                resident_tokens: t.resident_tokens,
                evicted_blocks: t.stats.evicted_blocks,
                ttft_hit: DistributionStats::from_samples(&ttft_hit),
                ttft_miss: DistributionStats::from_samples(&ttft_miss),
            }
        }),
    }
}

/// Fold the per-request records into per-priority-tier reports, sorted by
/// tier (most important first).
fn fold_class_reports(records: &[RequestRecord]) -> Vec<ClassReport> {
    let mut tiers: Vec<u8> = records.iter().map(|r| r.class.priority).collect();
    tiers.sort_unstable();
    tiers.dedup();
    tiers
        .into_iter()
        .map(|tier| {
            let members: Vec<&RequestRecord> = records
                .iter()
                .filter(|r| r.class.priority == tier)
                .collect();
            let queue_delays: Vec<f64> = members.iter().map(|r| r.queue_delay()).collect();
            let ttfts: Vec<f64> = members.iter().map(|r| r.ttft()).collect();
            let e2es: Vec<f64> = members.iter().map(|r| r.e2e()).collect();
            ClassReport {
                priority: tier,
                num_requests: members.len(),
                preemptions: members.iter().map(|r| r.preemptions).sum(),
                queue_delay: DistributionStats::from_samples(&queue_delays),
                ttft: DistributionStats::from_samples(&ttfts),
                e2e: DistributionStats::from_samples(&e2es),
                deadline_requests: members
                    .iter()
                    .filter(|r| r.class.ttft_deadline.is_some())
                    .count(),
                deadline_met: members
                    .iter()
                    .filter(|r| r.met_ttft_deadline() == Some(true))
                    .count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{RequestClass, RequestLength};
    use hermes_model::ModelId;

    fn template() -> Workload {
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.prompt_len = 32;
        w.gen_len = 8;
        w
    }

    fn config() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn request(id: usize, arrival: f64, prompt_len: usize, gen_len: usize) -> ServingRequest {
        ServingRequest {
            id,
            arrival,
            prompt_len,
            gen_len,
            class: RequestClass::default(),
            prefix: Vec::new(),
        }
    }

    /// Regression for the re-validation hole: a sampled request with a
    /// larger prompt but *smaller total* than the template (e.g. template
    /// 128+128, request 200+8) was never re-validated, because the old code
    /// only re-planned the request maximizing `prompt_len + gen_len` and
    /// only when that sum exceeded the template's. The max-prompt request
    /// must now produce a re-validation bound of its own.
    #[test]
    fn worst_case_bounds_cover_larger_prompt_with_smaller_total() {
        let template = Workload::paper_default(ModelId::Opt13B); // 128 + 128
        let requests = vec![request(0, 0.0, 200, 8)];
        let bounds = worst_case_bounds(&template, &requests);
        assert_eq!(bounds.len(), 1, "max-prompt request must be re-validated");
        assert_eq!(bounds[0].prompt_len, 200);
        assert_eq!(bounds[0].gen_len, 8);
    }

    #[test]
    fn worst_case_bounds_cover_both_extremes_and_dedupe() {
        let template = Workload::paper_default(ModelId::Opt13B); // 128 + 128
                                                                 // Distinct max-prompt (200+8) and max-total (100+200) requests:
                                                                 // both must be re-validated.
        let requests = vec![
            request(0, 0.0, 200, 8),
            request(1, 0.0, 100, 200),
            request(2, 0.0, 64, 64),
        ];
        let mut pairs: Vec<(usize, usize)> = worst_case_bounds(&template, &requests)
            .iter()
            .map(|b| (b.prompt_len, b.gen_len))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(100, 200), (200, 8)]);

        // One request embodying both extremes yields a single bound.
        let one = vec![request(0, 0.0, 300, 300)];
        assert_eq!(worst_case_bounds(&template, &one).len(), 1);

        // Requests within the template need no re-validation at all.
        let covered = vec![request(0, 0.0, 64, 64), request(1, 0.0, 128, 128)];
        assert!(worst_case_bounds(&template, &covered).is_empty());
        assert!(worst_case_bounds(&template, &[]).is_empty());
    }

    #[test]
    fn all_at_once_continuous_and_static_agree_without_caps() {
        // With every request present at time zero and no caps, both
        // policies admit everything immediately and run the same batch.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
        let continuous = simulate(SystemKind::hermes(), &config(), &sim).unwrap();
        let static_ = simulate(
            SystemKind::hermes(),
            &config(),
            &sim.clone().with_policy(BatchingPolicy::Static),
        )
        .unwrap();
        assert_eq!(continuous.records, static_.records);
        assert!((continuous.report.makespan - static_.report.makespan).abs() < 1e-12);
    }

    #[test]
    fn max_batch_cap_limits_concurrency() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 6)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(2));
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        // FCFS: requests finish in waves of two; later waves queue longer.
        let records = &outcome.records;
        assert!(records[0].queue_delay() < 1e-12);
        assert!(records[2].queue_delay() > 0.0);
        assert!(records[4].queue_delay() > records[2].queue_delay());
        assert_eq!(outcome.report.completed, 6);
    }

    #[test]
    fn impossible_caps_are_reported() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2)
            .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(1));
        assert!(matches!(
            simulate(SystemKind::hermes_base(), &config(), &sim),
            Err(HermesError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_simulations_finish_at_time_zero() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 0);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.makespan, 0.0);
        assert_eq!(outcome.report.generated_tokens, 0);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn idle_gaps_jump_the_clock_to_the_next_arrival() {
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1000.0],
            },
            2,
        );
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        // The second request starts fresh after a long idle gap, so its
        // queueing delay is zero and the makespan exceeds the gap.
        assert!(outcome.records[1].queue_delay() < 1e-9);
        assert!(outcome.report.makespan > 1000.0);
    }

    #[test]
    fn chunked_prefill_reproduces_total_work_and_generates_everything() {
        // Chunk sizes that do and do not divide the prompt length, budgets
        // above and below the chunk size: every variant completes all
        // requests and generates every token.
        let sim = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 0.5 }, 6);
        for (chunk_tokens, budget) in [(8, 16), (5, 5), (7, 3), (64, 64)] {
            let outcome = simulate(
                SystemKind::hermes_base(),
                &config(),
                &sim.clone().with_prefill(PrefillPolicy::Chunked {
                    chunk_tokens,
                    budget,
                }),
            )
            .unwrap();
            assert_eq!(outcome.report.completed, 6, "chunk {chunk_tokens}");
            assert_eq!(
                outcome.report.generated_tokens,
                6 * 8,
                "chunk {chunk_tokens}"
            );
            for r in &outcome.records {
                assert!(r.arrival <= r.admitted, "chunk {chunk_tokens}");
                assert!(r.admitted < r.first_token, "chunk {chunk_tokens}");
                assert!(r.first_token <= r.completed, "chunk {chunk_tokens}");
            }
        }
    }

    #[test]
    fn chunked_prefill_amortizes_to_the_stalled_prefill_total() {
        // One request, chunked into 8-token slices: the default cost
        // composition pro-rates the one-shot prefill cost over the chunks,
        // so the total prefill seconds match stall-the-world exactly.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1);
        let stalled = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let chunked = simulate(
            SystemKind::hermes_base(),
            &config(),
            &sim.clone().with_prefill(PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 8,
            }),
        )
        .unwrap();
        assert!(
            (chunked.report.breakdown.prefill - stalled.report.breakdown.prefill).abs() < 1e-9,
            "chunked prefill total {} vs stalled {}",
            chunked.report.breakdown.prefill,
            stalled.report.breakdown.prefill
        );
        // The lone request's own TTFT is delayed by chunking (its prompt
        // spreads over several boundaries), never improved.
        assert!(chunked.records[0].ttft() >= stalled.records[0].ttft() - 1e-12);
    }

    #[test]
    fn lockstep_chunked_groups_amortize_to_the_stalled_group_total() {
        // Four same-length prompts admitted at one boundary: stall-the-world
        // prefills them as one batched group. With a budget wide enough for
        // all four to advance each boundary, their co-scheduled chunks share
        // a batched pass per step and the total prefill matches exactly.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
        let stalled = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let chunked = simulate(
            SystemKind::hermes_base(),
            &config(),
            &sim.clone().with_prefill(PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 32,
            }),
        )
        .unwrap();
        assert!(
            (chunked.report.breakdown.prefill - stalled.report.breakdown.prefill).abs() < 1e-9,
            "lockstep chunked prefill total {} vs stalled group total {}",
            chunked.report.breakdown.prefill,
            stalled.report.breakdown.prefill
        );
        assert_eq!(chunked.report.completed, 4);
    }

    #[test]
    fn heterogeneous_lengths_thread_into_records_and_kv_accounting() {
        let lengths = vec![
            RequestLength {
                prompt_len: 16,
                gen_len: 4,
            },
            RequestLength {
                prompt_len: 48,
                gen_len: 12,
            },
            RequestLength {
                prompt_len: 16,
                gen_len: 1,
            },
        ];
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3).with_lengths(
            LengthDistribution::Trace {
                lengths: lengths.clone(),
            },
        );
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.generated_tokens, 4 + 12 + 1);
        for (r, l) in outcome.records.iter().zip(&lengths) {
            assert_eq!(r.prompt_len, l.prompt_len);
            assert_eq!(r.gen_len, l.gen_len);
        }
        // The longer request decodes more tokens, so it finishes last.
        assert!(outcome.records[1].completed > outcome.records[0].completed);
    }

    #[test]
    fn same_boundary_groups_stamp_admission_when_their_prefill_starts() {
        // Two prompt-length groups admitted at the same boundary: the second
        // group's prefill only starts after the first group's pass, and its
        // queue delay must say so.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2).with_lengths(
            LengthDistribution::Trace {
                lengths: vec![
                    RequestLength {
                        prompt_len: 16,
                        gen_len: 4,
                    },
                    RequestLength {
                        prompt_len: 48,
                        gen_len: 4,
                    },
                ],
            },
        );
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let [first, second] = &outcome.records[..] else {
            panic!("expected two records");
        };
        assert!(first.queue_delay() < 1e-12);
        assert!(
            second.admitted > first.admitted,
            "second group admitted at {} but first at {}",
            second.admitted,
            first.admitted
        );
        // The gap is exactly the first group's prefill pass.
        assert!(second.queue_delay() > 0.0);
    }

    #[test]
    fn single_token_requests_are_excluded_from_tpot() {
        let single = LengthDistribution::Trace {
            lengths: vec![
                RequestLength {
                    prompt_len: 32,
                    gen_len: 1,
                };
                3
            ],
        };
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3)
            .with_lengths(single.clone());
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        // All requests are single-token: the TPOT sample set is empty, not
        // a pile of zeros.
        assert_eq!(outcome.report.tpot, DistributionStats::default());
        assert!(outcome.report.ttft.mean > 0.0);
        assert!(outcome.report.e2e.mean > 0.0);

        // Mixing in multi-token requests: the TPOT percentiles reflect only
        // them (no zero samples dragging the median down).
        let mixed = LengthDistribution::Trace {
            lengths: vec![
                RequestLength {
                    prompt_len: 32,
                    gen_len: 1,
                },
                RequestLength {
                    prompt_len: 32,
                    gen_len: 8,
                },
                RequestLength {
                    prompt_len: 32,
                    gen_len: 1,
                },
            ],
        };
        let outcome = simulate(
            SystemKind::hermes_base(),
            &config(),
            &ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3).with_lengths(mixed),
        )
        .unwrap();
        assert!(
            outcome.report.tpot.p50 > 0.0,
            "p50 TPOT {} polluted by single-token zeros",
            outcome.report.tpot.p50
        );
        assert!(outcome.report.tpot.p50 <= outcome.report.tpot.max);
    }

    #[test]
    fn offered_rps_is_empirical_for_traces_and_spec_for_poisson() {
        let trace = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1.0, 2.0, 3.0, 4.0],
            },
            5,
        );
        let outcome = simulate(SystemKind::hermes_base(), &config(), &trace).unwrap();
        // 5 arrivals over a 4-second span: 1 request/s.
        assert!((outcome.report.offered_rps - 1.0).abs() < 1e-12);

        let poisson = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.5 }, 4);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &poisson).unwrap();
        assert_eq!(outcome.report.offered_rps, 2.5);

        // All-at-once has no arrival span; the empirical rate stays zero.
        let all = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &all).unwrap();
        assert_eq!(outcome.report.offered_rps, 0.0);
    }

    #[test]
    fn oversized_sampled_lengths_fail_memory_validation() {
        // The template fits, but the sampled request's KV footprint cannot:
        // the simulator must propagate the engine's memory check instead of
        // silently producing a report.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1).with_lengths(
            LengthDistribution::Trace {
                lengths: vec![RequestLength {
                    prompt_len: 500_000_000,
                    gen_len: 8,
                }],
            },
        );
        assert!(matches!(
            simulate(SystemKind::hermes_base(), &config(), &sim),
            Err(HermesError::InsufficientMemory { .. })
        ));
    }

    /// KV budget that fits one template request but not two.
    fn one_seat_kv_cap() -> u64 {
        let per_request = request_kv_bytes(&template(), 32, 8);
        per_request * 3 / 2
    }

    /// KV budget that fits exactly two template requests but not three.
    fn two_seat_kv_cap() -> u64 {
        request_kv_bytes(&template(), 32, 8) * 2
    }

    #[test]
    fn priority_preemption_evicts_the_lower_tier_and_everyone_completes() {
        // Request 0 (tier 2) occupies the only KV seat; request 1 (tier 0)
        // arrives mid-run, evicts it, runs to completion, then request 0
        // resumes with recompute. Both prefill policies must agree on the
        // lifecycle accounting.
        for prefill in [
            PrefillPolicy::StallTheWorld,
            PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 8,
            },
        ] {
            let sim = ServingSimulation::new(
                template(),
                ArrivalProcess::Trace {
                    times: vec![0.0, 1e-9],
                },
                2,
            )
            .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(one_seat_kv_cap()))
            .with_classes(PrioritySpec::Trace {
                classes: vec![RequestClass::new(2), RequestClass::new(0)],
            })
            .with_scheduling(SchedulingPolicy::Priority)
            .with_preemption(PreemptionPolicy::EvictAndRefill)
            .with_prefill(prefill);
            let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
            let name = prefill.name();

            assert_eq!(outcome.report.completed, 2, "{name}");
            assert_eq!(
                outcome.report.generated_tokens, 16,
                "{name}: every token generated once"
            );
            assert_eq!(outcome.report.preemptions, 1, "{name}");
            assert_eq!(outcome.records[0].preemptions, 1, "{name}");
            assert_eq!(outcome.records[1].preemptions, 0, "{name}");
            // The high-priority request overtakes: it completes first even
            // though the low-priority one started first.
            assert!(
                outcome.records[1].completed < outcome.records[0].completed,
                "{name}: high class completed {} vs low {}",
                outcome.records[1].completed,
                outcome.records[0].completed
            );
            // Lifecycle stays ordered through the eviction.
            for r in &outcome.records {
                assert!(r.arrival <= r.admitted, "{name}");
                assert!(r.admitted < r.first_token, "{name}");
                assert!(r.first_token <= r.completed, "{name}");
            }
            // Per-class accounting: the preemption is charged to tier 2.
            assert_eq!(outcome.report.class(0).unwrap().preemptions, 0, "{name}");
            assert_eq!(outcome.report.class(2).unwrap().preemptions, 1, "{name}");
            assert_eq!(outcome.report.scheduling, "priority", "{name}");
            assert_eq!(
                outcome.report.preemption_policy, "evict-and-refill",
                "{name}"
            );

            // Restart-with-recompute is paid in prefill seconds: the same
            // scenario without preemption does strictly less prefill work.
            let unpreempted = simulate(
                SystemKind::hermes_base(),
                &config(),
                &sim.clone().with_preemption(PreemptionPolicy::None),
            )
            .unwrap();
            assert_eq!(unpreempted.report.preemptions, 0, "{name}");
            assert!(
                outcome.report.breakdown.prefill > unpreempted.report.breakdown.prefill,
                "{name}: preemptive prefill {} vs unpreempted {}",
                outcome.report.breakdown.prefill,
                unpreempted.report.breakdown.prefill
            );
            // The point of evicting: the high-priority request's TTFT
            // strictly improves over waiting for the seat.
            assert!(
                outcome.records[1].ttft() < unpreempted.records[1].ttft(),
                "{name}: preemptive TTFT {} vs unpreempted {}",
                outcome.records[1].ttft(),
                unpreempted.records[1].ttft()
            );
        }
    }

    #[test]
    fn fcfs_never_preempts_even_with_eviction_enabled() {
        // Under FCFS no request outranks another, so EvictAndRefill is
        // bitwise inert.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9],
            },
            2,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(one_seat_kv_cap()))
        .with_classes(PrioritySpec::Trace {
            classes: vec![RequestClass::new(2), RequestClass::new(0)],
        })
        .with_preemption(PreemptionPolicy::EvictAndRefill);
        let preemptive = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let plain = simulate(
            SystemKind::hermes_base(),
            &config(),
            &sim.clone().with_preemption(PreemptionPolicy::None),
        )
        .unwrap();
        assert_eq!(preemptive.report.preemptions, 0);
        assert_eq!(preemptive.records, plain.records);
    }

    #[test]
    fn priority_orders_the_ready_queue_with_fcfs_within_a_tier() {
        // Three queued requests, one seat: the tier-0 request jumps the
        // queue, and the two tier-1 requests keep their arrival order.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
            .with_classes(PrioritySpec::Trace {
                classes: vec![
                    RequestClass::new(1),
                    RequestClass::new(0),
                    RequestClass::new(1),
                ],
            })
            .with_scheduling(SchedulingPolicy::Priority);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let [a, b, c] = &outcome.records[..] else {
            panic!("expected three records");
        };
        assert!(b.admitted < a.admitted, "tier 0 admitted first");
        assert!(a.admitted < c.admitted, "FCFS within tier 1");
    }

    #[test]
    fn edf_orders_by_absolute_deadline_with_best_effort_last() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 3)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
            .with_classes(PrioritySpec::Trace {
                classes: vec![
                    RequestClass::new(0).with_ttft_deadline(100.0),
                    RequestClass::new(0).with_ttft_deadline(1.0),
                    RequestClass::new(0),
                ],
            })
            .with_scheduling(SchedulingPolicy::Edf);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let [loose, tight, best_effort] = &outcome.records[..] else {
            panic!("expected three records");
        };
        assert!(tight.admitted < loose.admitted, "tightest deadline first");
        assert!(loose.admitted < best_effort.admitted, "best effort last");
    }

    #[test]
    fn slo_attainment_reflects_met_and_missed_deadlines() {
        // Two deadline-carrying requests sharing one seat: the first meets
        // its generous deadline, the second misses an impossible one.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
            .with_classes(PrioritySpec::Trace {
                classes: vec![
                    RequestClass::new(0).with_ttft_deadline(1e9),
                    RequestClass::new(0).with_ttft_deadline(1e-12),
                ],
            });
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.records[0].met_ttft_deadline(), Some(true));
        assert_eq!(outcome.records[1].met_ttft_deadline(), Some(false));
        assert!((outcome.report.slo_attainment().unwrap() - 0.5).abs() < 1e-12);
        let class = outcome.report.class(0).unwrap();
        assert_eq!(class.deadline_requests, 2);
        assert_eq!(class.deadline_met, 1);

        // Class-free scenarios report no attainment at all.
        let plain = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &plain).unwrap();
        assert_eq!(outcome.report.slo_attainment(), None);
        assert_eq!(outcome.report.per_class.len(), 1);
        assert_eq!(outcome.report.preemptions, 0);
    }

    #[test]
    fn equal_rank_ready_requests_keep_arrival_order() {
        // Coverage audit before the heap rewrite: equal primary ranks must
        // never reorder — admission is FCFS inside a priority tier and
        // inside an equal EDF deadline, even through a one-seat bottleneck.
        for (scheduling, classes) in [
            (
                SchedulingPolicy::Priority,
                PrioritySpec::Trace {
                    classes: vec![RequestClass::new(1); 4],
                },
            ),
            (
                SchedulingPolicy::Edf,
                PrioritySpec::Trace {
                    classes: vec![RequestClass::new(0).with_ttft_deadline(5.0); 4],
                },
            ),
        ] {
            let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4)
                .with_admission(AdmissionConfig::unlimited().with_max_batch(1))
                .with_classes(classes)
                .with_scheduling(scheduling);
            let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
            for pair in outcome.records.windows(2) {
                assert!(
                    pair[0].admitted < pair[1].admitted,
                    "{}: equal ranks must admit in arrival order",
                    scheduling.name()
                );
            }
        }
    }

    #[test]
    fn eviction_picks_the_latest_arrival_within_the_worst_tier() {
        // Two equal-tier sequences hold both seats; a tier-0 waiter evicts
        // exactly one victim. The tie-break inside the worst rank is
        // latest-arrival-first, so request 1 — not request 0 — must pay.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9, 0.2],
            },
            3,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()))
        .with_classes(PrioritySpec::Trace {
            classes: vec![
                RequestClass::new(2),
                RequestClass::new(2),
                RequestClass::new(0),
            ],
        })
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.completed, 3);
        assert_eq!(outcome.report.preemptions, 1);
        assert_eq!(
            outcome.records[0].preemptions, 0,
            "earlier arrival within the tier must be spared"
        );
        assert_eq!(
            outcome.records[1].preemptions, 1,
            "latest arrival within the worst tier is evicted first"
        );
        assert_eq!(outcome.records[2].preemptions, 0);
    }

    #[test]
    fn eviction_prefers_worse_tiers_over_later_arrivals() {
        // A tier-2 sequence arrived *before* a tier-1 sequence; a tier-0
        // waiter needs one seat. Rank dominates arrival order: the tier-2
        // sequence is evicted even though it is the older one.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9, 0.2],
            },
            3,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()))
        .with_classes(PrioritySpec::Trace {
            classes: vec![
                RequestClass::new(2),
                RequestClass::new(1),
                RequestClass::new(0),
            ],
        })
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.preemptions, 1);
        assert_eq!(outcome.records[0].preemptions, 1, "worst tier pays first");
        assert_eq!(outcome.records[1].preemptions, 0);
    }

    #[test]
    fn eviction_never_strikes_within_the_waiters_own_tier() {
        // Both seats held by tier-1 sequences and a tier-1 waiter blocked:
        // preemption compares primary ranks strictly, so nothing is evicted
        // and the waiter queues until a seat frees naturally.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9, 2e-9],
            },
            3,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()))
        .with_classes(PrioritySpec::Trace {
            classes: vec![RequestClass::new(1); 3],
        })
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.preemptions, 0);
        assert_eq!(outcome.report.completed, 3);
        assert!(
            outcome.records[2].queue_delay() > 0.0,
            "the same-tier waiter queues instead of evicting"
        );
    }

    #[test]
    fn multi_victim_eviction_frees_exactly_enough_seats() {
        // The waiter needs two seats' worth of KV while two single-seat
        // sequences hold the pool: both are evicted (smallest sufficient
        // victim prefix), the big request runs, and the victims resume.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9, 0.2],
            },
            3,
        )
        .with_lengths(LengthDistribution::Trace {
            lengths: vec![
                RequestLength {
                    prompt_len: 32,
                    gen_len: 8,
                },
                RequestLength {
                    prompt_len: 32,
                    gen_len: 8,
                },
                RequestLength {
                    prompt_len: 64,
                    gen_len: 16,
                },
            ],
        })
        .with_admission(
            // 2.5 single seats: fits both small requests, or the double-
            // sized one alone.
            AdmissionConfig::unlimited().with_kv_memory_bytes(two_seat_kv_cap()),
        )
        .with_classes(PrioritySpec::Trace {
            classes: vec![
                RequestClass::new(2),
                RequestClass::new(2),
                RequestClass::new(0),
            ],
        })
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.completed, 3);
        assert_eq!(outcome.report.preemptions, 2, "both seat-holders evicted");
        assert_eq!(outcome.records[0].preemptions, 1);
        assert_eq!(outcome.records[1].preemptions, 1);
        assert_eq!(outcome.report.generated_tokens, 8 + 8 + 16);
        assert!(
            outcome.records[2].completed < outcome.records[0].completed,
            "the tier-0 request overtakes both victims"
        );
    }

    #[test]
    fn empty_ready_queue_boundaries_admit_mid_decode_arrivals() {
        // The ready queue empties after the first admission, the system
        // keeps decoding through empty-queue boundaries, and a mid-decode
        // arrival is admitted at the next token boundary without disturbing
        // the running sequence.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-6],
            },
            2,
        );
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.completed, 2);
        // The joiner was admitted while request 0 was mid-flight: strictly
        // after its own arrival (a boundary had to come up) and strictly
        // before request 0 completed.
        assert!(outcome.records[1].admitted >= outcome.records[1].arrival);
        assert!(outcome.records[1].admitted < outcome.records[0].completed);
        assert_eq!(outcome.report.preemptions, 0);
    }

    #[test]
    fn invalid_prefill_policies_are_rejected() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1).with_prefill(
            PrefillPolicy::Chunked {
                chunk_tokens: 0,
                budget: 4,
            },
        );
        assert!(matches!(
            simulate(SystemKind::hermes_base(), &config(), &sim),
            Err(HermesError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unbounded_paged_accounting_reproduces_reserve_bitwise() {
        // With no KV budget the paged pool never constrains admission, so
        // switching the accounting mode must not move a single clock stamp
        // — the pool only adds its usage report.
        let base = ServingSimulation::new(template(), ArrivalProcess::Poisson { rate: 2.0 }, 10)
            .with_arrival_seed(17)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(3))
            .with_lengths(LengthDistribution::Uniform {
                prompt_min: 8,
                prompt_max: 40,
                gen_min: 1,
                gen_max: 10,
            })
            .with_prefill(PrefillPolicy::Chunked {
                chunk_tokens: 8,
                budget: 16,
            });
        let reserve = simulate(SystemKind::hermes_base(), &config(), &base).unwrap();
        let paged = simulate(
            SystemKind::hermes_base(),
            &config(),
            &base.clone().with_admission(
                AdmissionConfig::unlimited()
                    .with_max_batch(3)
                    .with_paged_kv(16),
            ),
        )
        .unwrap();
        assert_eq!(paged.records, reserve.records);
        assert!(reserve.report.kv.is_none());
        let kv = paged.report.kv.clone().expect("paged accounting reports");
        assert_eq!(kv.block_tokens, 16);
        assert_eq!(kv.capacity_blocks, None);
        assert!(kv.peak_blocks > 0);
        assert!((0.0..=1.0).contains(&kv.fragmentation), "{kv:?}");
        let mut stripped = paged.report.clone();
        stripped.kv = None;
        assert_eq!(stripped, reserve.report);
    }

    #[test]
    fn paged_admission_packs_more_requests_into_the_same_budget() {
        // Six decode-heavy requests (prompt 8, gen 32) under a KV budget
        // sized for two worst-case reservations. Reserve admission charges
        // the full 40-token footprint up front and seats two; paged
        // admission charges only the blocks the context actually needs
        // (9 tokens at admission) and seats all six, so queueing delay
        // collapses.
        let mut w = template();
        w.prompt_len = 8;
        w.gen_len = 32;
        let budget = request_kv_bytes(&w, 8, 32) * 2;
        let base = ServingSimulation::new(w, ArrivalProcess::AllAtOnce, 6)
            .with_preemption(PreemptionPolicy::EvictAndRefill);
        let reserve = simulate(
            SystemKind::hermes_base(),
            &config(),
            &base
                .clone()
                .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(budget)),
        )
        .unwrap();
        let paged = simulate(
            SystemKind::hermes_base(),
            &config(),
            &base.clone().with_admission(
                AdmissionConfig::unlimited()
                    .with_kv_memory_bytes(budget)
                    .with_paged_kv(4),
            ),
        )
        .unwrap();
        assert_eq!(reserve.report.completed, 6);
        assert_eq!(paged.report.completed, 6);
        assert!(
            paged.report.queue_delay.mean < reserve.report.queue_delay.mean,
            "paged queue delay {} vs reserve {}",
            paged.report.queue_delay.mean,
            reserve.report.queue_delay.mean
        );
        let kv = paged.report.kv.as_ref().expect("paged pool report");
        assert!(kv.utilization.is_some() && kv.peak_utilization.is_some());
        assert!(kv.peak_utilization.unwrap() <= 1.0 + 1e-12, "{kv:?}");
    }

    #[test]
    fn swap_out_resumes_without_recompute() {
        // Same single-seat preemption scenario as the EvictAndRefill
        // lifecycle test: tier 0 evicts tier 2 mid-decode. Under SwapOut
        // the victim's pages move to the swap tier and back instead of
        // being recomputed, so the swap run does strictly less prefill
        // work, pays for it in communication seconds, and still generates
        // every token exactly once.
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1e-9],
            },
            2,
        )
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(one_seat_kv_cap()))
        .with_classes(PrioritySpec::Trace {
            classes: vec![RequestClass::new(2), RequestClass::new(0)],
        })
        .with_scheduling(SchedulingPolicy::Priority)
        .with_preemption(PreemptionPolicy::EvictAndRefill);
        let evicted = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        let swapped = simulate(
            SystemKind::hermes_base(),
            &config(),
            &sim.clone().with_preemption(PreemptionPolicy::SwapOut),
        )
        .unwrap();

        assert_eq!(swapped.report.completed, 2);
        assert_eq!(swapped.report.generated_tokens, 16);
        assert_eq!(swapped.report.preemptions, 1);
        assert_eq!(swapped.records[0].preemptions, 1);
        assert_eq!(swapped.report.preemption_policy, "swap-out");
        // No recompute: the swap run's prefill work is strictly below the
        // evict-and-refill run's, which re-prefilled the victim.
        assert!(
            swapped.report.breakdown.prefill < evicted.report.breakdown.prefill,
            "swap prefill {} vs evict {}",
            swapped.report.breakdown.prefill,
            evicted.report.breakdown.prefill
        );
        let swap = swapped.report.swap.clone().expect("swap tier report");
        assert_eq!(swap.swap_outs, 1);
        assert_eq!(swap.swap_ins, 1);
        assert_eq!(swap.swapped_out_bytes, swap.swapped_in_bytes);
        assert!(swap.swapped_out_bytes > 0);
        assert!(swap.seconds > 0.0);
        assert!(evicted.report.swap.is_none());
    }

    #[test]
    fn bounded_paged_pool_without_preemption_is_rejected() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2).with_admission(
            AdmissionConfig::unlimited()
                .with_kv_memory_bytes(two_seat_kv_cap())
                .with_paged_kv(16),
        );
        match simulate(SystemKind::hermes_base(), &config(), &sim) {
            Err(HermesError::InvalidConfig(msg)) => {
                assert!(msg.contains("preemption"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn request_larger_than_the_paged_pool_is_rejected() {
        // A pool of one worst-case seat minus a block cannot ever hold
        // request 0 at full context; admitting it would guarantee an
        // eviction livelock, so validation refuses up front.
        let per_request = request_kv_bytes(&template(), 32, 8);
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 1)
            .with_admission(
                AdmissionConfig::unlimited()
                    .with_kv_memory_bytes(per_request / 2)
                    .with_paged_kv(16),
            )
            .with_preemption(PreemptionPolicy::SwapOut);
        match simulate(SystemKind::hermes_base(), &config(), &sim) {
            Err(HermesError::InvalidConfig(msg)) => {
                assert!(msg.contains("KV blocks"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
