//! The discrete-event serving simulator: a virtual clock driving arrivals,
//! admission, prefill and shared decode steps through a planned engine's
//! [`StepCostModel`](hermes_core::StepCostModel).

use serde::{Deserialize, Serialize};

use hermes_core::{
    ArrivalProcess, BatchState, DistributionStats, HermesError, LatencyBreakdown, ServingReport,
    SystemConfig, SystemKind, Workload,
};

use crate::arrival::sample_arrival_times;
use crate::request::{RequestRecord, ServingRequest};
use crate::scheduler::{request_kv_bytes, AdmissionConfig, BatchingPolicy};

/// One open-loop serving scenario: which requests arrive when, and how the
/// scheduler batches them.
///
/// The `template` workload supplies the model, dataset, calibration seed and
/// the per-request prompt/generation lengths; its `batch` field only
/// parameterises the engine's up-front validation (the actual batch
/// composition is decided by the scheduler at every token boundary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSimulation {
    /// Model, dataset, seed and per-request sequence lengths.
    pub template: Workload,
    /// How requests arrive.
    pub arrival: ArrivalProcess,
    /// Number of requests offered.
    pub num_requests: usize,
    /// Seed of the arrival sampler (independent of the template's
    /// activation-trace seed).
    pub arrival_seed: u64,
    /// How the scheduler forms batches.
    pub policy: BatchingPolicy,
    /// Admission caps.
    pub admission: AdmissionConfig,
}

impl ServingSimulation {
    /// A scenario with continuous batching and no admission caps.
    pub fn new(template: Workload, arrival: ArrivalProcess, num_requests: usize) -> Self {
        let arrival_seed = template.seed;
        ServingSimulation {
            template,
            arrival,
            num_requests,
            arrival_seed,
            policy: BatchingPolicy::Continuous,
            admission: AdmissionConfig::unlimited(),
        }
    }

    /// Same scenario with a different batching policy.
    pub fn with_policy(mut self, policy: BatchingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same scenario with different admission caps.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Same scenario with a different arrival-sampler seed.
    pub fn with_arrival_seed(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self
    }
}

/// Everything one simulation produced: the aggregate report plus the
/// per-request lifecycle records it was folded from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingOutcome {
    /// Aggregate serving metrics.
    pub report: ServingReport,
    /// Lifecycle timestamps of every request, in arrival order.
    pub records: Vec<RequestRecord>,
}

/// A sequence currently holding a batch slot.
struct ActiveSequence {
    /// Index into the request/record vectors.
    idx: usize,
    /// Current context length (prompt + tokens generated so far).
    context: usize,
    /// Tokens still to generate.
    remaining: usize,
    /// KV bytes reserved by this sequence.
    kv_bytes: u64,
}

/// Simulate `kind` on `config` under an open-loop serving scenario.
///
/// The simulation is a deterministic discrete-event loop over a virtual
/// clock: at every token boundary queued arrivals are admitted (FCFS, up to
/// the scenario's caps — continuously, or only into an idle system under
/// static batching), newly admitted requests are prefilled (grouped by
/// prompt length), and one decode step is priced for the *current* batch
/// composition via the engine's cost model. Equal inputs always produce
/// bitwise-identical outcomes.
///
/// # Errors
///
/// Propagates validation errors from the engine, the arrival spec and the
/// admission caps, and returns [`HermesError::InvalidConfig`] when the caps
/// are too small to ever admit a queued request.
pub fn simulate(
    kind: SystemKind,
    config: &SystemConfig,
    sim: &ServingSimulation,
) -> Result<ServingOutcome, HermesError> {
    sim.admission.validate()?;
    let times = sample_arrival_times(&sim.arrival, sim.num_requests, sim.arrival_seed)?;
    let requests = ServingRequest::from_template(&sim.template, &times);
    let mut plan = kind.engine(config).plan(&sim.template)?;

    let kv_bytes_per_request: Vec<u64> = requests
        .iter()
        .map(|r| request_kv_bytes(&sim.template, r.prompt_len, r.gen_len))
        .collect();
    let mut records: Vec<RequestRecord> = requests
        .iter()
        .map(|r| RequestRecord {
            id: r.id,
            arrival: r.arrival,
            admitted: 0.0,
            first_token: 0.0,
            completed: 0.0,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
        })
        .collect();

    let mut clock = 0.0f64;
    let mut next_arrival = 0usize;
    let mut ready: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut active: Vec<ActiveSequence> = Vec::new();
    let mut active_kv_bytes = 0u64;
    let mut breakdown = LatencyBreakdown::default();
    let mut imbalance_sum = 0.0;
    let mut imbalance_samples = 0usize;
    let mut generated_tokens = 0usize;
    let mut completed = 0usize;

    loop {
        // 1. Pull every request that has arrived by now into the queue.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= clock {
            ready.push_back(next_arrival);
            next_arrival += 1;
        }

        // 2. Admit from the queue (FCFS) at this token boundary.
        let may_admit = match sim.policy {
            BatchingPolicy::Continuous => true,
            BatchingPolicy::Static => active.is_empty(),
        };
        let mut admitted: Vec<usize> = Vec::new();
        if may_admit {
            while let Some(&idx) = ready.front() {
                // `active_kv_bytes` already includes the requests admitted
                // at this boundary, so the caps see the whole provisional
                // batch.
                let kv = kv_bytes_per_request[idx];
                if !sim
                    .admission
                    .admits(active.len() + admitted.len(), active_kv_bytes, kv)
                {
                    break;
                }
                ready.pop_front();
                active_kv_bytes += kv;
                admitted.push(idx);
            }
        }

        // 3. Prefill the newly admitted requests, one pass per prompt
        // length (requests sharing a prompt length are prefilled together,
        // so an all-at-once batch pays exactly the closed-loop prefill).
        if !admitted.is_empty() {
            for &idx in &admitted {
                records[idx].admitted = clock;
            }
            let mut groups: Vec<(usize, usize)> = Vec::new();
            for &idx in &admitted {
                let p = requests[idx].prompt_len;
                match groups.iter_mut().find(|(len, _)| *len == p) {
                    Some((_, n)) => *n += 1,
                    None => groups.push((p, 1)),
                }
            }
            for (prompt_len, count) in groups {
                let cost = plan.cost.prefill_cost(prompt_len, count);
                breakdown.prefill += cost;
                clock += cost;
            }
            for idx in admitted {
                let request = &requests[idx];
                active.push(ActiveSequence {
                    idx,
                    context: request.prompt_len,
                    remaining: request.gen_len,
                    kv_bytes: kv_bytes_per_request[idx],
                });
            }
        }

        // 4. Nothing running: jump to the next arrival or finish.
        if active.is_empty() {
            if !ready.is_empty() {
                // The queue head could not be admitted into an idle system:
                // the caps can never be satisfied.
                return Err(HermesError::InvalidConfig(format!(
                    "admission caps can never admit request {} (max_batch {:?}, kv budget {:?})",
                    ready[0], sim.admission.max_batch, sim.admission.kv_memory_bytes
                )));
            }
            if next_arrival < requests.len() {
                clock = clock.max(requests[next_arrival].arrival);
                continue;
            }
            break;
        }

        // 5. One shared decode step over the current batch composition.
        let batch = BatchState::new(active.iter().map(|a| a.context).collect());
        let outcome = plan.cost.decode_cost(&batch);
        breakdown = breakdown.merged(&outcome.latency);
        imbalance_sum += outcome.imbalance_sum;
        imbalance_samples += outcome.imbalance_samples;
        clock += outcome.latency.total();
        generated_tokens += active.len();
        for seq in &mut active {
            if seq.remaining == requests[seq.idx].gen_len {
                records[seq.idx].first_token = clock;
            }
            seq.context += 1;
            seq.remaining -= 1;
            if seq.remaining == 0 {
                records[seq.idx].completed = clock;
                completed += 1;
                active_kv_bytes -= seq.kv_bytes;
            }
        }
        active.retain(|seq| seq.remaining > 0);
    }

    let queue_delays: Vec<f64> = records.iter().map(RequestRecord::queue_delay).collect();
    let ttfts: Vec<f64> = records.iter().map(RequestRecord::ttft).collect();
    let tpots: Vec<f64> = records.iter().map(RequestRecord::tpot).collect();
    let e2es: Vec<f64> = records.iter().map(RequestRecord::e2e).collect();
    let report = ServingReport {
        system: plan.spec.system.clone(),
        policy: sim.policy.name().to_string(),
        num_requests: requests.len(),
        completed,
        offered_rps: sim.arrival.offered_rps().unwrap_or(0.0),
        makespan: clock,
        generated_tokens,
        breakdown,
        queue_delay: DistributionStats::from_samples(&queue_delays),
        ttft: DistributionStats::from_samples(&ttfts),
        tpot: DistributionStats::from_samples(&tpots),
        e2e: DistributionStats::from_samples(&e2es),
        dimm_imbalance: if imbalance_samples > 0 {
            imbalance_sum / imbalance_samples as f64
        } else {
            1.0
        },
    };
    Ok(ServingOutcome { report, records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::ModelId;

    fn template() -> Workload {
        let mut w = Workload::paper_default(ModelId::Opt13B);
        w.prompt_len = 32;
        w.gen_len = 8;
        w
    }

    fn config() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn all_at_once_continuous_and_static_agree_without_caps() {
        // With every request present at time zero and no caps, both
        // policies admit everything immediately and run the same batch.
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 4);
        let continuous = simulate(SystemKind::hermes(), &config(), &sim).unwrap();
        let static_ = simulate(
            SystemKind::hermes(),
            &config(),
            &sim.clone().with_policy(BatchingPolicy::Static),
        )
        .unwrap();
        assert_eq!(continuous.records, static_.records);
        assert!((continuous.report.makespan - static_.report.makespan).abs() < 1e-12);
    }

    #[test]
    fn max_batch_cap_limits_concurrency() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 6)
            .with_admission(AdmissionConfig::unlimited().with_max_batch(2));
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        // FCFS: requests finish in waves of two; later waves queue longer.
        let records = &outcome.records;
        assert!(records[0].queue_delay() < 1e-12);
        assert!(records[2].queue_delay() > 0.0);
        assert!(records[4].queue_delay() > records[2].queue_delay());
        assert_eq!(outcome.report.completed, 6);
    }

    #[test]
    fn impossible_caps_are_reported() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 2)
            .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(1));
        assert!(matches!(
            simulate(SystemKind::hermes_base(), &config(), &sim),
            Err(HermesError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_simulations_finish_at_time_zero() {
        let sim = ServingSimulation::new(template(), ArrivalProcess::AllAtOnce, 0);
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        assert_eq!(outcome.report.makespan, 0.0);
        assert_eq!(outcome.report.generated_tokens, 0);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn idle_gaps_jump_the_clock_to_the_next_arrival() {
        let sim = ServingSimulation::new(
            template(),
            ArrivalProcess::Trace {
                times: vec![0.0, 1000.0],
            },
            2,
        );
        let outcome = simulate(SystemKind::hermes_base(), &config(), &sim).unwrap();
        // The second request starts fresh after a long idle gap, so its
        // queueing delay is zero and the makespan exceeds the gap.
        assert!(outcome.records[1].queue_delay() < 1e-9);
        assert!(outcome.report.makespan > 1000.0);
    }
}
