//! The decode batch as indexed incremental state, plus the bookkeeping for
//! sequences still prefilling under chunked prefill.
//!
//! [`ActiveSet`] is the data-structure heart of the boundary body: it keeps
//! the batch composition, the preemption victim order and the completion
//! events all incrementally indexed, so [`ReplicaSim::step_boundary`]
//! (`super`) pays O(log n) per join/remove instead of rebuilding the batch
//! every step the way the sort-based reference scheduler does.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::ops::Bound;

use hermes_core::BatchState;

use crate::queue::Rank;

/// Bookkeeping for one sequence currently holding a batch slot, stored by
/// request index in [`ActiveSet`].
///
/// The sequence's *current* context length is never stored: every active
/// sequence grows by exactly one token per decode step, so `context =
/// context_at_join + (step - join_step)`, and the `shift`
/// (`context_at_join - join_step`) is the per-sequence invariant that makes
/// the whole batch composition advance for free as the global step counter
/// ticks.
pub(super) struct ActiveInfo {
    /// Join generation, for invalidating stale finish-heap entries after an
    /// eviction (a re-join pushes a fresh entry with a newer epoch).
    pub(super) epoch: u64,
    /// Global step count when the sequence joined the decode batch.
    pub(super) join_step: u64,
    /// `context_at_join - join_step`: the sequence's context at global step
    /// `s` is `shift + s` for as long as it stays active.
    pub(super) shift: i64,
    /// KV bytes reserved by this sequence.
    pub(super) kv_bytes: u64,
    /// Scheduling rank, kept for O(log n) removal from the rank index.
    pub(super) rank: Rank,
}

/// The decode batch as indexed incremental state: O(log n) join/remove and
/// O(distinct context lengths) per-step snapshots, replacing the per-step
/// linear rebuild of the sort-based scheduler.
///
/// Three indexes share the per-request [`ActiveInfo`] slab:
/// - `groups` counts sequences per context *shift*, so the batch
///   composition for [`BatchState::from_groups`] falls out of an in-order
///   walk without touching individual sequences (all contexts advance
///   together with the step counter);
/// - `by_rank` orders active sequences by scheduling rank for
///   worst-ranked-first victim selection under preemption;
/// - `finish` is the event heap of completion steps, validated lazily
///   against each sequence's `epoch` so evictions need not search the heap.
pub(super) struct ActiveSet {
    /// Per-request active-sequence state (`None` when not decoding).
    pub(super) info: Vec<Option<ActiveInfo>>,
    /// Number of active sequences.
    count: usize,
    /// Sequences per context shift (see [`ActiveInfo::shift`]).
    pub(super) groups: BTreeMap<i64, usize>,
    /// Active sequences ordered by (rank, request index).
    pub(super) by_rank: BTreeSet<(Rank, usize)>,
    /// Completion events: (finish step, request index, join epoch).
    finish: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Next join epoch.
    next_epoch: u64,
}

impl ActiveSet {
    pub(super) fn new(num_requests: usize) -> Self {
        ActiveSet {
            info: (0..num_requests).map(|_| None).collect(),
            count: 0,
            groups: BTreeMap::new(),
            by_rank: BTreeSet::new(),
            finish: BinaryHeap::new(),
            next_epoch: 0,
        }
    }

    /// Grow the per-request slab to cover `slots` request indexes (used by
    /// `ReplicaSim::inject`, which appends requests over the replica's
    /// lifetime instead of sizing everything up front).
    pub(super) fn ensure_slots(&mut self, slots: usize) {
        if self.info.len() < slots {
            self.info.resize_with(slots, || None);
        }
    }

    pub(super) fn len(&self) -> usize {
        self.count
    }

    pub(super) fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub(super) fn contains(&self, idx: usize) -> bool {
        self.info[idx].is_some()
    }

    /// Join the decode batch at global step `step` with `context` tokens of
    /// context and `remaining` tokens still to generate.
    pub(super) fn join(
        &mut self,
        idx: usize,
        context: usize,
        remaining: usize,
        kv_bytes: u64,
        rank: f64,
        step: u64,
    ) {
        debug_assert!(self.info[idx].is_none(), "request {idx} already active");
        debug_assert!(
            remaining > 0,
            "request {idx} joined with nothing to generate"
        );
        let shift = context as i64 - step as i64;
        let finish_step = step + remaining as u64;
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        *self.groups.entry(shift).or_insert(0) += 1;
        self.by_rank.insert((Rank(rank), idx));
        self.finish.push(Reverse((finish_step, idx, epoch)));
        self.info[idx] = Some(ActiveInfo {
            epoch,
            join_step: step,
            shift,
            kv_bytes,
            rank: Rank(rank),
        });
        self.count += 1;
    }

    /// Remove an active sequence (eviction or completion), returning its
    /// bookkeeping. Its finish-heap entry is left behind and invalidated by
    /// the epoch check in [`ActiveSet::drain_finished`].
    pub(super) fn remove(&mut self, idx: usize) -> ActiveInfo {
        // hermes-lint: allow(D3, reason = "remove is only called on active slots; a stale index is a scheduler bug worth a loud crash")
        let info = self.info[idx].take().expect("request not active");
        match self.groups.get_mut(&info.shift) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.groups.remove(&info.shift);
            }
        }
        self.by_rank.remove(&(info.rank, idx));
        self.count -= 1;
        info
    }

    /// The current batch composition, assembled from the group index in
    /// O(distinct context lengths).
    pub(super) fn batch_state(&self, step: u64) -> BatchState {
        BatchState::from_groups(
            self.groups
                .iter()
                .map(|(&shift, &count)| ((shift + step as i64) as usize, count))
                .collect(),
        )
    }

    /// Active sequences strictly outranked by `rank`, worst-ranked first
    /// (latest arrival first within a rank) — the victim candidate order of
    /// `PreemptionPolicy::EvictAndRefill`.
    pub(super) fn victims_outranking(&self, rank: f64) -> impl Iterator<Item = usize> + '_ {
        self.by_rank
            .range((Bound::Excluded((Rank(rank), usize::MAX)), Bound::Unbounded))
            .rev()
            .map(|&(_, idx)| idx)
    }

    /// Pop every sequence whose last token was generated by global step
    /// `step`, invoking `on_finish` with its bookkeeping. Stale entries of
    /// evicted epochs are discarded.
    pub(super) fn drain_finished(
        &mut self,
        step: u64,
        mut on_finish: impl FnMut(usize, ActiveInfo),
    ) {
        while let Some(&Reverse((finish_step, idx, epoch))) = self.finish.peek() {
            if finish_step > step {
                break;
            }
            self.finish.pop();
            if self.info[idx].as_ref().is_some_and(|i| i.epoch == epoch) {
                let info = self.remove(idx);
                on_finish(idx, info);
            }
        }
    }
}

/// A sequence admitted under chunked prefill whose prompt is still being
/// processed. It holds its KV reservation but does not join the decode batch
/// until the prompt completes.
pub(super) struct PrefillingSequence {
    /// Index into the request/record vectors.
    pub(super) idx: usize,
    /// Prefill tokens to process before the sequence may decode: the prompt,
    /// plus — after a preemption — the tokens already generated, which
    /// restart-with-recompute re-prefills.
    pub(super) target: usize,
    /// Prefill tokens processed so far.
    pub(super) done: usize,
    /// Whether the first chunk has been scheduled (admission is stamped when
    /// it is).
    pub(super) started: bool,
}
