//! The cluster-facing half of the replica: pulling in-flight work back out
//! of a drained or failed machine, packaging it for re-dispatch, and
//! folding the survivors into the replica's report.
//!
//! Everything here operates on the same private [`ReplicaSim`] state as the
//! boundary body in the parent module; the split keeps the hot loop and the
//! failover machinery readable on their own.

use hermes_core::ServingReport;

use crate::kv::KvPool;
use crate::prefix::PrefixCache;
use crate::request::{RequestRecord, ServingRequest};
use crate::simulator::ServingOutcome;
use crate::tallies::{build_report, KvTallies, PrefixTallies};

use super::ReplicaSim;

/// An in-flight request pulled back out of a drained or failed replica,
/// carrying everything the router needs to dispatch it again elsewhere:
/// the request itself, its global scheduling rank, the decode progress a
/// restart-with-recompute re-prefills, and the lifecycle record whose
/// original arrival/admission stamps must survive the move.
pub(crate) struct CarriedRequest {
    pub request: ServingRequest,
    pub rank: f64,
    pub generated: usize,
    pub ever_admitted: bool,
    pub record: RequestRecord,
}

impl ReplicaSim {
    /// Pull back every request that never started (drain semantics): the
    /// injected-but-not-yet-arrived tail and the never-admitted part of the
    /// ready queue. In-flight work — decoding, prefilling, swapped-out or
    /// evicted-and-requeued sequences — finishes locally. Returned
    /// requests are sorted by global request id for deterministic
    /// re-dispatch.
    pub(crate) fn extract_pending(&mut self) -> Vec<CarriedRequest> {
        let mut carried: Vec<CarriedRequest> = Vec::new();
        // The not-yet-arrived tail never entered the ready queue.
        while self.next_arrival < self.requests.len() {
            let idx = self.requests.len() - 1;
            if idx < self.next_arrival {
                break;
            }
            carried.push(self.carry_out(idx));
            self.waiting_kv_bytes -= self.kv_bytes_per_request[idx];
            self.requests.pop();
            self.times.pop();
            self.ranks.pop();
            self.records.pop();
            self.kv_bytes_per_request.pop();
            self.generated.pop();
            self.ever_admitted.pop();
            self.swapped.pop();
            self.covered.pop();
            self.reused.pop();
            self.lease.pop();
            self.extracted.pop();
        }
        // Never-admitted waiters leave; preempted/swapped victims stay and
        // finish here.
        let mut keep: Vec<usize> = Vec::new();
        while let Some(idx) = self.ready.pop() {
            if self.ever_admitted[idx] {
                keep.push(idx);
            } else {
                self.waiting_kv_bytes -= self.kv_bytes_per_request[idx];
                self.extracted[idx] = true;
                self.extracted_count += 1;
                carried.push(self.carry_out(idx));
            }
        }
        for idx in keep {
            self.ready.push(self.ranks[idx], idx);
        }
        carried.sort_by_key(|c| c.record.id);
        carried
    }

    /// Pull back *everything* in flight (fail semantics) and reset the
    /// replica's memory: the ready queue (swap-tier contents are lost),
    /// the prefilling set (chunk progress is lost) and the active batch
    /// all hand their requests back for restart-with-recompute elsewhere;
    /// the paged pool and the prefix cache restart cold. Returned requests
    /// are sorted by global request id for deterministic re-dispatch.
    pub(crate) fn extract_all(&mut self) -> Vec<CarriedRequest> {
        let mut carried = self.extract_pending();
        // Admitted waiters (evicted or swapped-out victims): their swap
        // bytes and cache claims die with the machine.
        while let Some(idx) = self.ready.pop() {
            self.waiting_kv_bytes -= self.kv_bytes_per_request[idx];
            self.swapped[idx] = None;
            self.release_claim(idx);
            self.extracted[idx] = true;
            self.extracted_count += 1;
            carried.push(self.carry_out(idx));
        }
        // Prefilling sequences lose their chunk progress and their pages
        // (or their reservation, under reserve accounting).
        while let Some(seq) = self.prefilling.pop() {
            self.prefill_target_tokens -= seq.target;
            match self.pool.as_mut() {
                Some(pool) => {
                    pool.release(seq.idx);
                }
                None => self.active_kv_bytes -= self.kv_bytes_per_request[seq.idx],
            }
            self.records[seq.idx].preemptions += 1;
            self.release_claim(seq.idx);
            self.extracted[seq.idx] = true;
            self.extracted_count += 1;
            carried.push(self.carry_out(seq.idx));
        }
        // Active sequences record their progress (the remainder decodes
        // elsewhere after a re-prefill) and release everything they hold.
        let decoding: Vec<usize> = (0..self.requests.len())
            .filter(|&idx| self.active.contains(idx))
            .collect();
        for idx in decoding {
            let info = self.active.remove(idx);
            self.generated[idx] += (self.step - info.join_step) as usize;
            self.records[idx].preemptions += 1;
            self.active_covered_tokens -= self.covered[idx] as u64;
            match self.pool.as_mut() {
                Some(pool) => {
                    pool.release(idx);
                }
                None => self.active_kv_bytes -= info.kv_bytes,
            }
            self.release_claim(idx);
            self.extracted[idx] = true;
            self.extracted_count += 1;
            carried.push(self.carry_out(idx));
        }
        self.pending_first_token.clear();
        self.chunks.clear();
        debug_assert_eq!(self.active_covered_tokens, 0);
        debug_assert_eq!(self.active_kv_bytes, 0);
        // The machine's memory restarts cold: fresh pool (the block
        // high-water mark restarts with it), fresh cache.
        if let Some(bt) = self.paged_block_tokens {
            let block_bytes = bt as u64 * self.token_bytes;
            let capacity = self.sim.admission.kv_memory_bytes.map(|b| b / block_bytes);
            self.pool = Some(KvPool::new(bt, block_bytes, capacity, self.requests.len()));
        }
        if self.cache.is_some() {
            self.cache = Some(PrefixCache::new(
                self.paged_block_tokens
                    // hermes-lint: allow(D3, reason = "validate_prefix_cache rejected any cache mode without paged accounting")
                    .expect("prefix cache validated to require paged accounting"),
            ));
        }
        carried.sort_by_key(|c| c.record.id);
        carried
    }

    /// Drop request `idx`'s cache claim (lease, covered/reused runs).
    fn release_claim(&mut self, idx: usize) {
        if let (Some(cache), Some(l)) = (self.cache.as_mut(), self.lease[idx].take()) {
            cache.release(l);
        }
        self.covered[idx] = 0;
        self.reused[idx] = 0;
    }

    /// Package request `idx` for re-dispatch. The caller marks it
    /// extracted (or pops it entirely, for the not-yet-arrived tail).
    fn carry_out(&mut self, idx: usize) -> CarriedRequest {
        CarriedRequest {
            request: self.requests[idx].clone(),
            rank: self.ranks[idx],
            generated: self.generated[idx],
            ever_admitted: self.ever_admitted[idx],
            record: self.records[idx].clone(),
        }
    }

    /// Restart a recovered replica's clock at `t` (it was dead in
    /// between; its next boundary happens no earlier than the recovery).
    pub(crate) fn restart_at(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Fold this replica's tallies and surviving records (requests
    /// extracted away by drain/fail complete elsewhere and are excluded)
    /// into its [`ServingReport`].
    pub(crate) fn report(&self) -> ServingReport {
        let filtered: Vec<RequestRecord>;
        let records: &[RequestRecord] = if self.extracted_count == 0 {
            &self.records
        } else {
            filtered = self
                .records
                .iter()
                .zip(&self.extracted)
                .filter(|&(_, &gone)| !gone)
                .map(|(r, _)| r.clone())
                .collect();
            &filtered
        };
        let kv_tallies = self.pool.as_ref().map(|pool| KvTallies {
            block_tokens: pool.block_tokens(),
            block_bytes: pool.block_bytes(),
            capacity_blocks: pool.capacity_blocks(),
            peak_blocks: pool.peak_blocks(),
            block_steps: self.kv_block_steps,
            used_token_steps: self.kv_used_token_steps,
            steps: self.kv_steps,
        });
        let prefix_tallies = self.cache.as_ref().map(|cache| PrefixTallies {
            stats: cache.stats(),
            resident_blocks: cache.resident_blocks(),
            resident_tokens: cache.resident_tokens(),
            recomputed_prefill_tokens: self.recomputed_prefill_tokens,
        });
        build_report(
            &self.sim,
            &self.plan.spec,
            &self.times,
            records,
            self.clock,
            self.completed,
            self.generated_tokens,
            self.breakdown,
            self.imbalance_sum,
            self.imbalance_samples,
            kv_tallies,
            self.swap,
            prefix_tallies,
        )
    }

    /// This replica's surviving records (extracted requests excluded), as
    /// `(request id, record)` pairs for fleet-wide reassembly.
    pub(crate) fn surviving_records(&self) -> Vec<RequestRecord> {
        self.records
            .iter()
            .zip(&self.extracted)
            .filter(|&(_, &gone)| !gone)
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// Finish the single-replica drive: the aggregate report plus every
    /// record, exactly as the monolithic `simulate()` returned them.
    pub(crate) fn into_outcome(mut self) -> ServingOutcome {
        let report = self.report();
        ServingOutcome {
            report,
            records: std::mem::take(&mut self.records),
        }
    }
}
