//! Internal DRAM bandwidth model for a center-buffer NDP core.
//!
//! In a center-buffer NDP design (TensorDIMM/RecNMP-style, which the paper
//! adopts) the NDP core sits in the buffer chip and reads weights through
//! the DIMM's internal data path. Its sustained bandwidth is the channel
//! bandwidth de-rated by the row-buffer efficiency implied by the DDR4
//! timing parameters and boosted by the modest access parallelism the buffer
//! chip can extract by overlapping rank switches (`ndp_access_parallelism`).
//! With the Table II configuration this yields ≈25–30 GB/s per DIMM
//! (≈0.2 TB/s for the 8-DIMM pool) — well above PCIe, well below the GPU's
//! GDDR6, which is exactly why the paper calls the NDP-DIMMs the
//! "computation-limited" but "storage-ample" side of the system. (The
//! ~1.6 TB/s figure in the paper's Fig. 1 is the raw all-bank aggregate;
//! the end-to-end results of Section V imply the sustained per-DIMM figure
//! modelled here.)

use serde::{Deserialize, Serialize};

use crate::config::DimmConfig;

/// Analytic DRAM bandwidth/latency model derived from a [`DimmConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramBandwidthModel {
    config: DimmConfig,
}

impl DramBandwidthModel {
    /// Build the model for a DIMM configuration.
    pub fn new(config: DimmConfig) -> Self {
        DramBandwidthModel { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &DimmConfig {
        &self.config
    }

    /// Row-buffer efficiency of streaming reads: the fraction of time the
    /// data bus is busy when rows are read end-to-end (activate + precharge
    /// overhead amortised over one full row).
    pub fn streaming_efficiency(&self) -> f64 {
        let t = &self.config.timing;
        // Cycles of data transfer per row: row_bytes / (bus width * 2 per cycle).
        let transfer_cycles =
            self.config.row_bytes as f64 / (2.0 * self.config.bus_width_bytes as f64);
        // With enough banks, activation of the next row overlaps the current
        // row's transfer; the residual overhead is the non-overlappable part
        // of tRCD + tRP beyond what tFAW/bank-level parallelism hides.
        let overhead = (t.t_rcd + t.t_rp) as f64 / self.config.banks_per_group.max(1) as f64;
        transfer_cycles / (transfer_cycles + overhead)
    }

    /// Efficiency of scattered (per-neuron granularity) reads, where each
    /// access streams one neuron row of `access_bytes` before switching rows.
    pub fn scattered_efficiency(&self, access_bytes: u64) -> f64 {
        let t = &self.config.timing;
        let transfer_cycles = access_bytes as f64 / (2.0 * self.config.bus_width_bytes as f64);
        let overhead = (t.t_rcd + t.t_rp) as f64;
        (transfer_cycles / (transfer_cycles + overhead)).min(self.streaming_efficiency())
    }

    /// Internal bandwidth (bytes/s) available to the NDP core through the
    /// center buffer.
    pub fn internal_bandwidth(&self) -> f64 {
        self.config.channel_bandwidth()
            * self.config.ndp_access_parallelism
            * self.streaming_efficiency()
    }

    /// External bandwidth (bytes/s) visible to the host memory controller
    /// (one channel, standard DDR4 access).
    pub fn external_bandwidth(&self) -> f64 {
        self.config.channel_bandwidth() * self.streaming_efficiency()
    }

    /// Time (seconds) for the NDP core to read `bytes` of weights laid out as
    /// neuron rows of `row_granularity` bytes each.
    pub fn read_time(&self, bytes: u64, row_granularity: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let eff = self.scattered_efficiency(row_granularity.max(1));
        let bw = self.config.channel_bandwidth() * self.config.ndp_access_parallelism * eff;
        bytes as f64 / bw
    }

    /// Latency (seconds) of a single row activation + column read, used for
    /// small control-metadata accesses.
    pub fn access_latency(&self) -> f64 {
        let t = &self.config.timing;
        (t.t_rcd + t.t_cl + t.t_bl) as f64 / self.config.memory_clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramBandwidthModel {
        DramBandwidthModel::new(DimmConfig::ddr4_3200())
    }

    #[test]
    fn internal_bandwidth_matches_paper_scale() {
        // Per DIMM the NDP core sustains a bit more than the 25.6 GB/s
        // channel rate; the 8-DIMM pool lands around 0.2 TB/s, which is what
        // the paper's end-to-end Hermes-base numbers imply.
        let per_dimm = model().internal_bandwidth();
        assert!(
            (24.0e9..36.0e9).contains(&per_dimm),
            "per-DIMM internal bandwidth {per_dimm:.3e}"
        );
        let pool = 8.0 * per_dimm;
        assert!(
            (0.15e12..0.30e12).contains(&pool),
            "8-DIMM internal bandwidth {pool:.3e}"
        );
    }

    #[test]
    fn external_bandwidth_is_less_than_internal() {
        let m = model();
        assert!(m.external_bandwidth() < m.internal_bandwidth());
        // And close to (but below) the 25.6 GB/s channel peak.
        assert!(m.external_bandwidth() > 20.0e9);
        assert!(m.external_bandwidth() < 25.6e9);
    }

    #[test]
    fn efficiencies_are_fractions() {
        let m = model();
        let s = m.streaming_efficiency();
        assert!((0.5..1.0).contains(&s), "streaming efficiency {s}");
        let small = m.scattered_efficiency(64);
        let big = m.scattered_efficiency(16 * 1024);
        assert!(small < big, "smaller accesses must be less efficient");
        assert!(big <= s + 1e-12);
    }

    #[test]
    fn read_time_scales_linearly_with_bytes() {
        let m = model();
        let t1 = m.read_time(1 << 20, 16 * 1024);
        let t2 = m.read_time(2 << 20, 16 * 1024);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert_eq!(m.read_time(0, 1024), 0.0);
    }

    #[test]
    fn access_latency_is_tens_of_nanoseconds() {
        let lat = model().access_latency();
        assert!((20e-9..80e-9).contains(&lat), "latency {lat:.2e}");
    }
}
