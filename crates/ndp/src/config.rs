//! NDP-DIMM configuration (Table II of the paper).

use serde::{Deserialize, Serialize};

use hermes_model::GIB;

/// DDR4 timing parameters in memory-clock cycles (Table II, "DIMM Timing").
///
/// The memory clock of DDR4-3200 runs at 1600 MHz (3200 MT/s double data
/// rate); all parameters below are expressed in those cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Row cycle time.
    pub t_rc: u32,
    /// RAS-to-CAS delay.
    pub t_rcd: u32,
    /// CAS latency.
    pub t_cl: u32,
    /// Row precharge time.
    pub t_rp: u32,
    /// Burst length (cycles of data transfer per column access).
    pub t_bl: u32,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: u32,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: u32,
    /// Row-to-row activation delay, different bank group.
    pub t_rrd_s: u32,
    /// Row-to-row activation delay, same bank group.
    pub t_rrd_l: u32,
    /// Four-activation window.
    pub t_faw: u32,
}

impl DramTiming {
    /// DDR4-3200 timing used throughout the paper (Table II).
    pub fn ddr4_3200() -> Self {
        DramTiming {
            t_rc: 76,
            t_rcd: 24,
            t_cl: 24,
            t_rp: 24,
            t_bl: 4,
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

/// Full configuration of one NDP-DIMM (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimmConfig {
    /// DRAM capacity per DIMM in bytes (32 GB in the paper).
    pub capacity_bytes: u64,
    /// Memory-clock frequency in Hz (1600 MHz for DDR4-3200).
    pub memory_clock_hz: f64,
    /// Data-bus width in bytes (64-bit DIMM channel = 8 bytes).
    pub bus_width_bytes: u32,
    /// Ranks per DIMM.
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// DRAM row-buffer (page) size per bank in bytes.
    pub row_bytes: u32,
    /// Effective access parallelism the center-buffer NDP core achieves over
    /// the single DIMM data path (> 1.0 reflects overlapping rank switches
    /// with transfers; the NDP core still funnels data through the buffer
    /// chip at roughly channel rate, which is what makes the DIMMs the
    /// "computation-limited" side of the system in the paper).
    pub ndp_access_parallelism: f64,
    /// Timing parameters.
    pub timing: DramTiming,
    /// Number of FP16 multipliers in the GEMV unit (paper default: 256).
    pub gemv_multipliers: u32,
    /// NDP-core clock frequency in Hz (1 GHz).
    pub ndp_clock_hz: f64,
    /// Center-buffer size in bytes (256 KB).
    pub buffer_bytes: u64,
    /// NDP core area overhead in mm² (1.23 mm² in TSMC 7 nm).
    pub ndp_core_area_mm2: f64,
    /// DIMM-link bandwidth in bytes/s (25 GB/s per link).
    pub link_bandwidth: f64,
    /// DIMM-link energy per bit in pJ.
    pub link_energy_pj_per_bit: f64,
    /// Number of lanes per DIMM-link.
    pub link_lanes: u32,
}

impl DimmConfig {
    /// The configuration of Table II: DDR4-3200, 32 GB/DIMM, 4 ranks,
    /// 2 bank groups/rank, 4 banks/group, 256-multiplier GEMV unit @ 1 GHz,
    /// 256 KB buffer, 25 GB/s DIMM-link.
    pub fn ddr4_3200() -> Self {
        DimmConfig {
            capacity_bytes: 32 * GIB,
            memory_clock_hz: 1.6e9,
            bus_width_bytes: 8,
            ranks: 4,
            bank_groups: 2,
            banks_per_group: 4,
            row_bytes: 8192,
            ndp_access_parallelism: 1.2,
            timing: DramTiming::ddr4_3200(),
            gemv_multipliers: 256,
            ndp_clock_hz: 1.0e9,
            buffer_bytes: 256 * 1024,
            ndp_core_area_mm2: 1.23,
            link_bandwidth: 25.0e9,
            link_energy_pj_per_bit: 1.17,
            link_lanes: 8,
        }
    }

    /// Same DIMM with a different number of GEMV multipliers (the design
    /// space swept in Fig. 16).
    pub fn with_multipliers(mut self, multipliers: u32) -> Self {
        self.gemv_multipliers = multipliers;
        self
    }

    /// Peak external (channel) bandwidth of the DIMM in bytes/s.
    pub fn channel_bandwidth(&self) -> f64 {
        // Double data rate: two transfers per memory-clock cycle.
        2.0 * self.memory_clock_hz * self.bus_width_bytes as f64
    }

    /// Total banks per DIMM.
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Validate physical plausibility of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 {
            return Err("capacity_bytes must be positive".into());
        }
        if self.memory_clock_hz <= 0.0 || self.ndp_clock_hz <= 0.0 {
            return Err("clock frequencies must be positive".into());
        }
        if self.gemv_multipliers == 0 {
            return Err("gemv_multipliers must be positive".into());
        }
        if self.ranks == 0 || self.bank_groups == 0 || self.banks_per_group == 0 {
            return Err("DRAM organisation fields must be positive".into());
        }
        if self.ndp_access_parallelism <= 0.0 {
            return Err("ndp_access_parallelism must be positive".into());
        }
        if self.link_bandwidth <= 0.0 {
            return Err("link_bandwidth must be positive".into());
        }
        Ok(())
    }
}

impl Default for DimmConfig {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_defaults() {
        let cfg = DimmConfig::ddr4_3200();
        cfg.validate().unwrap();
        assert_eq!(cfg.capacity_bytes, 32 * GIB);
        assert_eq!(cfg.gemv_multipliers, 256);
        assert_eq!(cfg.timing.t_rc, 76);
        assert_eq!(cfg.timing.t_bl, 4);
        assert_eq!(cfg.total_banks(), 32);
        assert_eq!(cfg.link_lanes, 8);
    }

    #[test]
    fn channel_bandwidth_is_25_6_gbps() {
        let cfg = DimmConfig::ddr4_3200();
        let bw = cfg.channel_bandwidth();
        assert!((bw - 25.6e9).abs() < 1e6, "got {bw}");
    }

    #[test]
    fn with_multipliers_changes_only_gemv() {
        let cfg = DimmConfig::ddr4_3200().with_multipliers(64);
        assert_eq!(cfg.gemv_multipliers, 64);
        assert_eq!(cfg.capacity_bytes, 32 * GIB);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = DimmConfig::ddr4_3200();
        cfg.gemv_multipliers = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DimmConfig::ddr4_3200();
        cfg.capacity_bytes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DimmConfig::ddr4_3200();
        cfg.link_bandwidth = 0.0;
        assert!(cfg.validate().is_err());
    }
}
