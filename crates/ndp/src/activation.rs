//! The activation unit of an NDP-DIMM (softmax, ReLU and other non-linear
//! functions; Figure 5b).

use serde::{Deserialize, Serialize};

use crate::config::DimmConfig;

/// Cost model of the activation unit: 256 FP16 exponentiation, addition and
/// multiplication lanes, plus a comparator tree, adder tree and divider,
/// running at the NDP clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationUnit {
    lanes: u32,
    clock_hz: f64,
}

impl ActivationUnit {
    /// Number of cycles a softmax spends per element beyond the exponent
    /// itself (max-subtraction, sum reduction share, division).
    const SOFTMAX_EXTRA_CYCLES_PER_ELEMENT: f64 = 3.0;

    /// Build the activation unit from a DIMM configuration (the lane count
    /// follows the GEMV-unit width).
    pub fn new(config: &DimmConfig) -> Self {
        ActivationUnit {
            lanes: config.gemv_multipliers,
            clock_hz: config.ndp_clock_hz,
        }
    }

    /// Number of parallel FP16 lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Time (seconds) to apply ReLU to a vector of `elements` values
    /// (one comparison per element).
    pub fn relu_time(&self, elements: u64) -> f64 {
        let cycles = (elements as f64 / self.lanes as f64).ceil();
        cycles / self.clock_hz
    }

    /// Time (seconds) to compute a softmax over `elements` values: exponent,
    /// max/sum reductions and the final division.
    pub fn softmax_time(&self, elements: u64) -> f64 {
        if elements == 0 {
            return 0.0;
        }
        let per_lane = (elements as f64 / self.lanes as f64).ceil();
        let reduction = (elements as f64).log2().ceil().max(1.0);
        let cycles = per_lane * (1.0 + Self::SOFTMAX_EXTRA_CYCLES_PER_ELEMENT) + reduction;
        cycles / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ActivationUnit {
        ActivationUnit::new(&DimmConfig::ddr4_3200())
    }

    #[test]
    fn relu_is_cheap() {
        // ReLU over a 32K-wide FFN activation vector should take ~128 cycles.
        let t = unit().relu_time(32 * 1024);
        assert!(t < 1e-6, "relu time {t:.2e}");
        assert!(t > 0.0);
    }

    #[test]
    fn softmax_costs_more_than_relu() {
        let u = unit();
        assert!(u.softmax_time(4096) > u.relu_time(4096));
        assert_eq!(u.softmax_time(0), 0.0);
    }

    #[test]
    fn times_scale_with_elements() {
        let u = unit();
        assert!(u.softmax_time(8192) > u.softmax_time(1024));
        assert!(u.relu_time(8192) > u.relu_time(1024));
    }

    #[test]
    fn lane_count_follows_config() {
        let u = ActivationUnit::new(&DimmConfig::ddr4_3200().with_multipliers(64));
        assert_eq!(u.lanes(), 64);
        // Fewer lanes → slower softmax.
        assert!(u.softmax_time(4096) > unit().softmax_time(4096));
    }
}
