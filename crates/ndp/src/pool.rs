//! A pool of NDP-DIMMs acting as the GPU's augmented memory.

use serde::{Deserialize, Serialize};

use crate::config::DimmConfig;
use crate::dimm::NdpDimm;
use crate::link::DimmLink;

/// The collection of NDP-DIMMs attached to the host (8 × 32 GB in the
/// paper's evaluation configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimmPool {
    dimms: Vec<NdpDimm>,
}

impl DimmPool {
    /// Build a pool of `count` identical DIMMs.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero: Hermes always needs at least one DIMM.
    pub fn homogeneous(count: usize, config: DimmConfig) -> Self {
        assert!(count > 0, "a DIMM pool needs at least one DIMM");
        DimmPool {
            dimms: (0..count).map(|_| NdpDimm::new(config.clone())).collect(),
        }
    }

    /// The paper's evaluation pool: 8 DIMMs of the Table II configuration.
    pub fn paper_default() -> Self {
        Self::homogeneous(8, DimmConfig::ddr4_3200())
    }

    /// Number of DIMMs.
    pub fn len(&self) -> usize {
        self.dimms.len()
    }

    /// True when the pool has no DIMMs (never the case for a valid pool).
    pub fn is_empty(&self) -> bool {
        self.dimms.is_empty()
    }

    /// Access one DIMM.
    pub fn dimm(&self, idx: usize) -> &NdpDimm {
        &self.dimms[idx]
    }

    /// Iterate over the DIMMs.
    pub fn iter(&self) -> impl Iterator<Item = &NdpDimm> {
        self.dimms.iter()
    }

    /// Total DRAM capacity in bytes.
    pub fn total_capacity(&self) -> u64 {
        self.dimms.iter().map(NdpDimm::capacity_bytes).sum()
    }

    /// Aggregate internal bandwidth of the pool (bytes/s).
    pub fn aggregate_internal_bandwidth(&self) -> f64 {
        self.dimms
            .iter()
            .map(|d| d.dram().internal_bandwidth())
            .sum()
    }

    /// Aggregate GEMV throughput (FLOP/s).
    pub fn aggregate_peak_flops(&self) -> f64 {
        self.dimms.iter().map(|d| d.gemv().peak_flops()).sum()
    }

    /// The DIMM-link of the pool (all links are identical).
    pub fn link(&self) -> &DimmLink {
        self.dimms[0].link()
    }

    /// Per-layer NDP latency (Eq. 2): the slowest DIMM bounds the layer, so
    /// this is the maximum of the per-DIMM times.
    pub fn layer_time(per_dimm_times: &[f64]) -> f64 {
        per_dimm_times.iter().copied().fold(0.0, f64::max)
    }

    /// Load-imbalance factor of a set of per-DIMM times: max / mean
    /// (1.0 = perfectly balanced).
    pub fn imbalance(per_dimm_times: &[f64]) -> f64 {
        if per_dimm_times.is_empty() {
            return 1.0;
        }
        let max = Self::layer_time(per_dimm_times);
        let mean = per_dimm_times.iter().sum::<f64>() / per_dimm_times.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_model::GIB;

    #[test]
    fn paper_pool_has_256_gb() {
        let pool = DimmPool::paper_default();
        assert_eq!(pool.len(), 8);
        assert_eq!(pool.total_capacity(), 256 * GIB);
        assert!(!pool.is_empty());
    }

    #[test]
    fn aggregate_bandwidth_sits_between_pcie_and_gpu_memory() {
        // The pool's sustained internal bandwidth is several times the PCIe
        // 4.0 link (so computing cold neurons in place beats shipping them)
        // but well below the RTX 4090's 936 GB/s (so the DIMMs remain the
        // computation-limited side the hot/cold partition must respect).
        let pool = DimmPool::paper_default();
        let agg = pool.aggregate_internal_bandwidth();
        assert!(agg > 2.0 * 64.0e9, "aggregate {agg:.3e}");
        assert!(agg < 0.936e12, "aggregate {agg:.3e}");
    }

    #[test]
    fn aggregate_flops_scale_with_dimm_count() {
        let p4 = DimmPool::homogeneous(4, DimmConfig::ddr4_3200());
        let p8 = DimmPool::homogeneous(8, DimmConfig::ddr4_3200());
        assert!((p8.aggregate_peak_flops() / p4.aggregate_peak_flops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn layer_time_is_max_over_dimms() {
        assert_eq!(DimmPool::layer_time(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(DimmPool::layer_time(&[]), 0.0);
    }

    #[test]
    fn imbalance_factor() {
        assert!((DimmPool::imbalance(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((DimmPool::imbalance(&[2.0, 1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(DimmPool::imbalance(&[]), 1.0);
        assert_eq!(DimmPool::imbalance(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one DIMM")]
    fn empty_pool_panics() {
        let _ = DimmPool::homogeneous(0, DimmConfig::ddr4_3200());
    }

    #[test]
    fn dimm_accessors() {
        let pool = DimmPool::homogeneous(2, DimmConfig::ddr4_3200());
        assert_eq!(pool.dimm(0).capacity_bytes(), pool.dimm(1).capacity_bytes());
        assert_eq!(pool.iter().count(), 2);
        assert!((pool.link().bandwidth() - 25.0e9).abs() < 1.0);
    }
}
