//! NDP-DIMM hardware substrate models for the Hermes simulator.
//!
//! The paper augments a consumer-grade GPU with commodity DDR4 DIMMs that
//! embed a near-data-processing (NDP) core behind the center buffer
//! (Figure 5b, Table II). This crate models every component of that
//! substrate analytically, calibrated to the published configuration:
//!
//! * DDR4-3200 DRAM timing and the internal bandwidth available to a
//!   center-buffer NDP core ([`dram`]),
//! * the GEMV unit (256 FP16 multipliers @ 1 GHz) and the activation unit
//!   ([`gemv`], [`activation`]),
//! * the DIMM-link inter-DIMM interconnect (25 GB/s per link) ([`link`]),
//! * a single NDP-DIMM ([`dimm`]) and a pool of DIMMs whose per-layer
//!   latency is the maximum over modules, Eq. 2 of the paper ([`pool`]).
//!
//! # Example
//!
//! ```
//! use hermes_ndp::{DimmConfig, NdpDimm};
//!
//! let dimm = NdpDimm::new(DimmConfig::ddr4_3200());
//! // Reading and multiply-accumulating 1 MiB of cold-neuron weights takes
//! // a few microseconds on one DIMM.
//! let t = dimm.gemv_time(1 << 20, 1 << 20, 1);
//! assert!(t > 0.0 && t < 1e-3);
//! ```

pub mod activation;
pub mod config;
pub mod dimm;
pub mod dram;
pub mod gemv;
pub mod link;
pub mod pool;

pub use activation::ActivationUnit;
pub use config::{DimmConfig, DramTiming};
pub use dimm::NdpDimm;
pub use dram::DramBandwidthModel;
pub use gemv::GemvUnit;
pub use link::{DimmLink, HostMediatedPath};
pub use pool::DimmPool;
