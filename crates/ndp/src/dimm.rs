//! A single NDP-DIMM: DRAM + GEMV unit + activation unit + DIMM-link.

use serde::{Deserialize, Serialize};

use crate::activation::ActivationUnit;
use crate::config::DimmConfig;
use crate::dram::DramBandwidthModel;
use crate::gemv::GemvUnit;
use crate::link::{DimmLink, HostMediatedPath};

/// One NDP-DIMM module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdpDimm {
    config: DimmConfig,
    dram: DramBandwidthModel,
    gemv: GemvUnit,
    activation: ActivationUnit,
    link: DimmLink,
}

impl NdpDimm {
    /// Build a DIMM from its configuration.
    pub fn new(config: DimmConfig) -> Self {
        let dram = DramBandwidthModel::new(config.clone());
        let gemv = GemvUnit::new(&config);
        let activation = ActivationUnit::new(&config);
        let link = DimmLink::new(&config);
        NdpDimm {
            config,
            dram,
            gemv,
            activation,
            link,
        }
    }

    /// The DIMM's configuration.
    pub fn config(&self) -> &DimmConfig {
        &self.config
    }

    /// DRAM capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.config.capacity_bytes
    }

    /// The DRAM bandwidth model.
    pub fn dram(&self) -> &DramBandwidthModel {
        &self.dram
    }

    /// The GEMV unit.
    pub fn gemv(&self) -> &GemvUnit {
        &self.gemv
    }

    /// The activation unit.
    pub fn activation(&self) -> &ActivationUnit {
        &self.activation
    }

    /// The DIMM-link attached to this DIMM.
    pub fn link(&self) -> &DimmLink {
        &self.link
    }

    /// The host-mediated migration path (used only for the ablation that
    /// shows why DIMM-link matters).
    pub fn host_path(&self) -> HostMediatedPath {
        HostMediatedPath::new(&self.config)
    }

    /// Time (seconds) to perform a GEMV over `weight_bytes` of cold-neuron
    /// weights performing `flops` of work for a batch of `batch` sequences.
    ///
    /// Weights are read from DRAM once (they are reused across the batch);
    /// the computation is the maximum of the DRAM-read time and the GEMV
    /// compute time (they are pipelined through the center buffer).
    pub fn gemv_time(&self, weight_bytes: u64, flops: u64, batch: usize) -> f64 {
        let read = self
            .dram
            .read_time(weight_bytes, self.neuron_row_granularity());
        let compute = self.gemv.compute_time(flops * batch as u64);
        read.max(compute)
    }

    /// Time (seconds) for the attention computation over a KV cache of
    /// `kv_bytes` with `flops` of score/value work for `batch` sequences.
    ///
    /// Each sequence has its own KV cache, so both the DRAM traffic and the
    /// compute scale with the batch size.
    pub fn attention_time(&self, kv_bytes: u64, flops: u64, batch: usize) -> f64 {
        let read = self
            .dram
            .read_time(kv_bytes * batch as u64, self.neuron_row_granularity());
        let compute = self.gemv.compute_time(flops * batch as u64);
        let softmax = self.activation.softmax_time((kv_bytes / 2).max(1)) * batch as f64;
        read.max(compute) + softmax
    }

    /// Typical contiguous access granularity of one neuron's weights, used
    /// to derate DRAM efficiency for scattered activated-neuron reads.
    fn neuron_row_granularity(&self) -> u64 {
        16 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dimm() -> NdpDimm {
        NdpDimm::new(DimmConfig::ddr4_3200())
    }

    #[test]
    fn gemv_time_is_bandwidth_bound_at_batch_1() {
        let d = dimm();
        // 1 MiB of weights = 0.5M FP16 elements = 1M FLOPs at batch 1:
        // compute takes ~2 µs at 512 GFLOPS while the read takes ~6 µs, so
        // the operation is DRAM-bound — the regime the paper describes.
        let bytes = 1 << 20;
        let flops = (bytes / 2) * 2;
        let t = d.gemv_time(bytes, flops, 1);
        let read = d.dram().read_time(bytes, 16 * 1024);
        assert!((t - read).abs() / read < 1e-9, "expected DRAM-bound");
    }

    #[test]
    fn gemv_becomes_compute_bound_at_large_batch() {
        let d = dimm();
        let bytes = 1 << 20;
        let flops = (bytes / 2) * 2;
        let t32 = d.gemv_time(bytes, flops, 32);
        let compute32 = d.gemv().compute_time(flops * 32);
        assert!(
            (t32 - compute32).abs() / compute32 < 1e-9,
            "expected compute-bound"
        );
        assert!(t32 > d.gemv_time(bytes, flops, 1));
    }

    #[test]
    fn attention_time_scales_with_batch() {
        let d = dimm();
        let t1 = d.attention_time(1 << 20, 1 << 20, 1);
        let t4 = d.attention_time(1 << 20, 1 << 20, 4);
        assert!(t4 > 3.0 * t1, "attention should scale ~linearly with batch");
    }

    #[test]
    fn capacity_matches_config() {
        assert_eq!(dimm().capacity_bytes(), 32 * hermes_model::GIB);
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let d = dimm();
        assert_eq!(d.gemv_time(0, 0, 1), 0.0);
    }
}
