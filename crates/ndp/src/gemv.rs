//! The GEMV unit of an NDP-DIMM (Figure 5b).

use serde::{Deserialize, Serialize};

use crate::config::DimmConfig;

/// Cost model of the GEMV unit: `gemv_multipliers` FP16 multipliers running
/// at the NDP clock, each performing one multiply-accumulate per cycle, fed
/// from the center buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemvUnit {
    multipliers: u32,
    clock_hz: f64,
    buffer_bytes: u64,
}

impl GemvUnit {
    /// Build the GEMV unit from a DIMM configuration.
    pub fn new(config: &DimmConfig) -> Self {
        GemvUnit {
            multipliers: config.gemv_multipliers,
            clock_hz: config.ndp_clock_hz,
            buffer_bytes: config.buffer_bytes,
        }
    }

    /// Number of multipliers.
    pub fn multipliers(&self) -> u32 {
        self.multipliers
    }

    /// Peak throughput in FLOP/s (2 FLOPs per multiplier per cycle: one
    /// multiply and one accumulate).
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.multipliers as f64 * self.clock_hz
    }

    /// Time (seconds) to execute `flops` of GEMV work, compute-bound.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.peak_flops()
    }

    /// Center-buffer capacity in bytes (stores intermediate results).
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    /// Whether an intermediate result of `bytes` fits in the center buffer
    /// without spilling to DRAM.
    pub fn fits_in_buffer(&self, bytes: u64) -> bool {
        bytes <= self.buffer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_is_hundreds_of_gflops() {
        // Paper: NDP-DIMMs provide "hundreds of GFLOPS".
        let unit = GemvUnit::new(&DimmConfig::ddr4_3200());
        let gflops = unit.peak_flops() / 1e9;
        assert!((100.0..=1000.0).contains(&gflops), "{gflops} GFLOPS");
        assert_eq!(unit.multipliers(), 256);
    }

    #[test]
    fn compute_time_scales_with_flops() {
        let unit = GemvUnit::new(&DimmConfig::ddr4_3200());
        assert!((unit.compute_time(2_000_000) / unit.compute_time(1_000_000) - 2.0).abs() < 1e-12);
        assert_eq!(unit.compute_time(0), 0.0);
    }

    #[test]
    fn more_multipliers_mean_faster_compute() {
        let small = GemvUnit::new(&DimmConfig::ddr4_3200().with_multipliers(32));
        let large = GemvUnit::new(&DimmConfig::ddr4_3200().with_multipliers(512));
        assert!(large.compute_time(1 << 30) < small.compute_time(1 << 30));
        assert!((large.peak_flops() / small.peak_flops() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_capacity_check() {
        let unit = GemvUnit::new(&DimmConfig::ddr4_3200());
        assert!(unit.fits_in_buffer(128 * 1024));
        assert!(!unit.fits_in_buffer(512 * 1024));
        assert_eq!(unit.buffer_bytes(), 256 * 1024);
    }

    #[test]
    fn buffer_boundary_is_inclusive() {
        let unit = GemvUnit::new(&DimmConfig::ddr4_3200());
        assert!(unit.fits_in_buffer(unit.buffer_bytes()));
        assert!(!unit.fits_in_buffer(unit.buffer_bytes() + 1));
        assert!(unit.fits_in_buffer(0));
    }

    #[test]
    fn peak_flops_scales_with_clock() {
        let mut slow_cfg = DimmConfig::ddr4_3200();
        slow_cfg.ndp_clock_hz /= 2.0;
        let base = GemvUnit::new(&DimmConfig::ddr4_3200());
        let slow = GemvUnit::new(&slow_cfg);
        assert!((base.peak_flops() / slow.peak_flops() - 2.0).abs() < 1e-9);
        assert!((slow.compute_time(1 << 20) / base.compute_time(1 << 20) - 2.0).abs() < 1e-9);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(32))]

        /// compute_time is exactly linear in FLOPs: additive and monotone.
        #[test]
        fn compute_time_is_linear(a in 1u64..1_000_000_000, b in 1u64..1_000_000_000) {
            let unit = GemvUnit::new(&DimmConfig::ddr4_3200());
            let ta = unit.compute_time(a);
            let tb = unit.compute_time(b);
            let tab = unit.compute_time(a + b);
            proptest::prop_assert!(ta > 0.0 && tb > 0.0);
            proptest::prop_assert!((tab - (ta + tb)).abs() <= 1e-12 * tab.max(1e-300));
            if a < b {
                proptest::prop_assert!(ta < tb);
            }
        }

        /// Doubling the multiplier count halves the compute time.
        #[test]
        fn multipliers_halve_compute_time(mults in 1u32..512, flops in 1u64..1_000_000_000) {
            let small = GemvUnit::new(&DimmConfig::ddr4_3200().with_multipliers(mults));
            let large = GemvUnit::new(&DimmConfig::ddr4_3200().with_multipliers(2 * mults));
            let ratio = small.compute_time(flops) / large.compute_time(flops);
            proptest::prop_assert!((ratio - 2.0).abs() < 1e-9);
        }
    }
}
