//! DIMM-link inter-DIMM interconnect and the host-mediated alternative.
//!
//! The paper adopts DIMM-link (25 GB/s bidirectional point-to-point links
//! between DIMMs) to migrate cold neurons for load balancing, and reports
//! that it is over 62× faster than bouncing the data through the host,
//! reducing migration overhead on OPT-66B from 5.3% of runtime to < 0.2%.

use serde::{Deserialize, Serialize};

use crate::config::DimmConfig;

/// Point-to-point DIMM-link between two DIMMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimmLink {
    bandwidth: f64,
    energy_pj_per_bit: f64,
    /// Fixed per-transfer setup latency (bridge arbitration), seconds.
    setup_latency: f64,
}

impl DimmLink {
    /// Build the link model from a DIMM configuration.
    pub fn new(config: &DimmConfig) -> Self {
        DimmLink {
            bandwidth: config.link_bandwidth,
            energy_pj_per_bit: config.link_energy_pj_per_bit,
            setup_latency: 0.5e-6,
        }
    }

    /// Link bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Time (seconds) to move `bytes` from one DIMM to another.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.setup_latency + bytes as f64 / self.bandwidth
    }

    /// Energy (joules) of transferring `bytes`.
    pub fn transfer_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.energy_pj_per_bit * 1e-12
    }
}

/// The baseline path for inter-DIMM data movement: read to the host over the
/// memory channel, then write back out to the destination DIMM, sharing the
/// host memory bus both ways.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMediatedPath {
    /// Effective host-side bandwidth for one direction (bytes/s).
    host_bandwidth: f64,
    /// Software + memory-controller overhead per migration batch (seconds).
    software_overhead: f64,
}

impl HostMediatedPath {
    /// Host-mediated path using the DIMM's external channel bandwidth,
    /// de-rated by contention with ongoing inference traffic, plus a fixed
    /// software overhead per batch.
    pub fn new(config: &DimmConfig) -> Self {
        HostMediatedPath {
            // Read + write share one memory channel, contend with the
            // ongoing inference traffic, and are driven by CPU copy loops;
            // the effective per-direction bandwidth is a small fraction of
            // the channel peak. All host-mediated migrations additionally
            // serialise through the single memory controller, whereas
            // DIMM-links between different DIMM pairs operate in parallel.
            host_bandwidth: config.channel_bandwidth() / 8.0,
            software_overhead: 100e-6,
        }
    }

    /// Time (seconds) to move `bytes` between two DIMMs through the host.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        // Data crosses the host twice (read then write).
        self.software_overhead + 2.0 * bytes as f64 / self.host_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_scales_with_bytes() {
        let link = DimmLink::new(&DimmConfig::ddr4_3200());
        assert_eq!(link.transfer_time(0), 0.0);
        let t1 = link.transfer_time(1 << 20);
        let t16 = link.transfer_time(16 << 20);
        assert!(t16 > t1);
        assert!((link.bandwidth() - 25.0e9).abs() < 1.0);
    }

    #[test]
    fn dimm_link_is_much_faster_than_host_path() {
        // Paper: DIMM-link provides over 62× speedup for neuron migration
        // compared to relying on the host. For a multi-megabyte migration
        // batch the modelled ratio should be an order of magnitude or more.
        let cfg = DimmConfig::ddr4_3200();
        let link = DimmLink::new(&cfg);
        let host = HostMediatedPath::new(&cfg);
        let bytes = 64 << 20; // 64 MiB of migrated neurons
        let speedup = host.transfer_time(bytes) / link.transfer_time(bytes);
        assert!(speedup > 10.0, "speedup {speedup:.1}");
    }

    #[test]
    fn transfer_energy_is_positive_and_linear() {
        let link = DimmLink::new(&DimmConfig::ddr4_3200());
        let e1 = link.transfer_energy(1000);
        let e2 = link.transfer_energy(2000);
        assert!(e1 > 0.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn host_path_has_fixed_overhead() {
        let host = HostMediatedPath::new(&DimmConfig::ddr4_3200());
        assert_eq!(host.transfer_time(0), 0.0);
        assert!(host.transfer_time(1) > 20e-6);
    }
}
