//! Roofline kernel cost model for GPU execution.

use serde::{Deserialize, Serialize};

use crate::device::GpuDevice;

/// Roofline cost model: a kernel's runtime is the maximum of its
/// compute-bound and memory-bound times, plus a fixed launch overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCostModel {
    device: GpuDevice,
    /// Fraction of peak tensor throughput achievable by real kernels.
    compute_efficiency: f64,
    /// Fraction of peak memory bandwidth achievable by real kernels.
    bandwidth_efficiency: f64,
    /// Kernel launch + driver overhead per kernel invocation (seconds).
    launch_overhead: f64,
}

impl KernelCostModel {
    /// Build the model for a device with typical efficiencies (70% of peak
    /// compute, 80% of peak bandwidth, 5 µs launch overhead).
    pub fn new(device: GpuDevice) -> Self {
        KernelCostModel {
            device,
            compute_efficiency: 0.70,
            bandwidth_efficiency: 0.80,
            launch_overhead: 5e-6,
        }
    }

    /// The modelled device.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Kernel launch overhead in seconds.
    pub fn launch_overhead(&self) -> f64 {
        self.launch_overhead
    }

    /// Generic roofline time for a kernel touching `bytes` of memory and
    /// performing `flops` of FP16 work.
    pub fn kernel_time(&self, bytes: u64, flops: u64) -> f64 {
        let mem = bytes as f64 / (self.device.memory_bandwidth * self.bandwidth_efficiency);
        let compute = flops as f64 / (self.device.tensor_flops * self.compute_efficiency);
        self.launch_overhead + mem.max(compute)
    }

    /// Time of a GEMV/skinny-GEMM over `weight_bytes` of resident weights
    /// performing `flops` of work per sequence for a batch of `batch`
    /// sequences. Weights are read once and reused across the batch.
    pub fn gemv_time(&self, weight_bytes: u64, flops: u64, batch: usize) -> f64 {
        self.kernel_time(weight_bytes, flops * batch as u64)
    }

    /// Time of the attention operator for one layer: the KV cache of every
    /// sequence is streamed once, and the score/value FLOPs scale with batch.
    pub fn attention_time(&self, kv_bytes: u64, flops: u64, batch: usize) -> f64 {
        self.kernel_time(kv_bytes * batch as u64, flops * batch as u64)
    }

    /// Time of the dense prefill GEMM over `weight_bytes` of weights with
    /// `flops` total work (already including the prompt length and batch).
    /// Prefill is compute-bound, so the same roofline applies.
    pub fn gemm_time(&self, weight_bytes: u64, flops: u64) -> f64 {
        self.kernel_time(weight_bytes, flops)
    }

    /// Arithmetic intensity (FLOP/byte) above which kernels on this device
    /// become compute-bound.
    pub fn ridge_point(&self) -> f64 {
        (self.device.tensor_flops * self.compute_efficiency)
            / (self.device.memory_bandwidth * self.bandwidth_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KernelCostModel {
        KernelCostModel::new(GpuDevice::rtx_4090())
    }

    #[test]
    fn gemv_at_batch_1_is_bandwidth_bound() {
        let m = model();
        // 100 MB of weights, 100 MFLOPs: intensity 1 FLOP/byte << ridge.
        let t = m.gemv_time(100_000_000, 100_000_000, 1);
        let mem_only = 100_000_000.0 / (936.0e9 * 0.8) + m.launch_overhead();
        assert!((t - mem_only).abs() / mem_only < 1e-9);
    }

    #[test]
    fn large_batch_becomes_compute_bound() {
        let m = model();
        let weight_bytes = 100_000_000u64;
        let flops = 2 * weight_bytes; // 2 FLOPs per FP16 element read
                                      // Ridge point of the 4090 is ~300 FLOP/byte; batch 512 crosses it.
        let t_small = m.gemv_time(weight_bytes, flops, 1);
        let t_large = m.gemv_time(weight_bytes, flops, 512);
        assert!(t_large > t_small);
        assert!(m.ridge_point() > 100.0 && m.ridge_point() < 1000.0);
    }

    #[test]
    fn batch_reuses_weights() {
        // Batch 4 must cost far less than 4× batch 1 while bandwidth-bound.
        let m = model();
        let t1 = m.gemv_time(500_000_000, 1_000_000_000, 1);
        let t4 = m.gemv_time(500_000_000, 1_000_000_000, 4);
        assert!(t4 < 1.5 * t1);
    }

    #[test]
    fn attention_scales_with_batch() {
        let m = model();
        let t1 = m.attention_time(10_000_000, 20_000_000, 1);
        let t8 = m.attention_time(10_000_000, 20_000_000, 8);
        assert!(t8 > 6.0 * t1);
    }

    #[test]
    fn slower_gpus_take_longer() {
        let fast = KernelCostModel::new(GpuDevice::rtx_4090());
        let slow = KernelCostModel::new(GpuDevice::tesla_t4());
        assert!(slow.gemv_time(1 << 30, 1 << 31, 1) > fast.gemv_time(1 << 30, 1 << 31, 1));
        // Compute-heavy prefill is also slower on the 3090 than the 4090
        // despite equal memory bandwidth.
        let mid = KernelCostModel::new(GpuDevice::rtx_3090());
        let flops = 50_000_000_000_000u64;
        assert!(mid.gemm_time(1 << 30, flops) > fast.gemm_time(1 << 30, flops));
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let m = model();
        let t = m.kernel_time(64, 64);
        assert!((t - m.launch_overhead()).abs() < 1e-6);
    }
}
