//! GPU, PCIe and host-CPU cost models for the Hermes simulator.
//!
//! The paper measures GPU kernels on real hardware with Nsight Compute; this
//! crate replaces those measurements with a roofline cost model (compute vs
//! memory-bandwidth bound) for each device the evaluation uses:
//!
//! * consumer GPUs: RTX 4090, RTX 3090, Tesla T4 (Fig. 15),
//! * the server-grade A100-40GB used by the TensorRT-LLM reference (Fig. 17),
//! * the PCIe 4.0 ×16 host↔GPU link that bottlenecks every offloading
//!   baseline,
//! * the host CPU (i9-13900K, 89.6 GB/s DRAM bandwidth) used by the
//!   Hermes-host ablation and PowerInfer-style baselines.
//!
//! Token generation is memory-bandwidth bound on all of these devices, so a
//! roofline model reproduces the relative behaviour that drives the paper's
//! results.
//!
//! # Example
//!
//! ```
//! use hermes_gpu::{GpuDevice, KernelCostModel};
//!
//! let gpu = GpuDevice::rtx_4090();
//! let model = KernelCostModel::new(gpu);
//! // A dense GEMV over 100 MB of weights is bandwidth-bound:
//! let t = model.gemv_time(100_000_000, 100_000_000, 1);
//! assert!(t > 50e-6 && t < 500e-6);
//! ```

pub mod device;
pub mod host;
pub mod kernel;
pub mod pcie;

pub use device::GpuDevice;
pub use host::HostCpu;
pub use kernel::KernelCostModel;
pub use pcie::PcieLink;
