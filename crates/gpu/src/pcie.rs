//! PCIe host↔GPU interconnect model.

use serde::{Deserialize, Serialize};

/// A PCIe link between host memory and GPU memory.
///
/// PCIe 4.0 ×16 provides a nominal 64 GB/s (the figure the paper quotes);
/// real transfers achieve a large fraction of that for big DMA bursts and
/// much less for small scattered copies, which is captured by the per-
/// transfer latency term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    /// Peak unidirectional bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Achievable fraction of the peak for large DMA transfers.
    pub efficiency: f64,
    /// Per-transfer latency (driver + DMA setup), seconds.
    pub latency: f64,
}

impl PcieLink {
    /// PCIe 4.0 ×16: 64 GB/s nominal (the configuration of the paper).
    pub fn gen4_x16() -> Self {
        PcieLink {
            bandwidth: 64.0e9,
            efficiency: 0.85,
            latency: 10e-6,
        }
    }

    /// PCIe 3.0 ×16: 32 GB/s nominal (for sensitivity experiments).
    pub fn gen3_x16() -> Self {
        PcieLink {
            bandwidth: 32.0e9,
            efficiency: 0.85,
            latency: 10e-6,
        }
    }

    /// Effective sustained bandwidth in bytes/s.
    pub fn effective_bandwidth(&self) -> f64 {
        self.bandwidth * self.efficiency
    }

    /// Time (seconds) to transfer `bytes` in one DMA burst.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.effective_bandwidth()
    }

    /// Time (seconds) to transfer `bytes` split into `chunks` separate
    /// copies (e.g. per-layer or per-neuron-group transfers), each paying
    /// the per-transfer latency.
    pub fn chunked_transfer_time(&self, bytes: u64, chunks: usize) -> f64 {
        if bytes == 0 || chunks == 0 {
            return 0.0;
        }
        chunks as f64 * self.latency + bytes as f64 / self.effective_bandwidth()
    }
}

impl Default for PcieLink {
    fn default() -> Self {
        Self::gen4_x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen4_matches_paper_bandwidth() {
        let link = PcieLink::gen4_x16();
        assert!((link.bandwidth - 64.0e9).abs() < 1.0);
        assert!(link.effective_bandwidth() < link.bandwidth);
    }

    #[test]
    fn pcie_is_far_slower_than_gpu_memory() {
        // The >15× bandwidth gap between PCIe and GPU memory is the problem
        // statement of the paper.
        let link = PcieLink::gen4_x16();
        let gpu_bw = 936.0e9;
        assert!(gpu_bw / link.effective_bandwidth() > 15.0);
    }

    #[test]
    fn transfer_time_scales() {
        let link = PcieLink::gen4_x16();
        assert_eq!(link.transfer_time(0), 0.0);
        let t1 = link.transfer_time(1 << 30);
        let t2 = link.transfer_time(2 << 30);
        assert!(t2 > 1.9 * t1 && t2 < 2.1 * t1);
    }

    #[test]
    fn chunking_adds_latency() {
        let link = PcieLink::gen4_x16();
        let single = link.transfer_time(1 << 30);
        let chunked = link.chunked_transfer_time(1 << 30, 100);
        assert!(chunked > single);
        assert_eq!(link.chunked_transfer_time(0, 10), 0.0);
    }

    #[test]
    fn gen3_is_half_of_gen4() {
        let g3 = PcieLink::gen3_x16();
        let g4 = PcieLink::gen4_x16();
        assert!((g4.bandwidth / g3.bandwidth - 2.0).abs() < 1e-12);
    }
}
