//! Host-CPU compute model (the PowerInfer-style "Hermes-host" comparison).

use serde::{Deserialize, Serialize};

/// Cost model of the host CPU computing cold-neuron GEMVs out of ordinary
/// DIMM-based host memory.
///
/// The paper's Hermes-host configuration uses an Intel i9-13900K with a
/// maximum DRAM bandwidth of 89.6 GB/s; cold-neuron GEMV is bandwidth-bound
/// on such a CPU, which is exactly why the NDP-DIMM design wins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostCpu {
    /// Marketing name.
    pub name: String,
    /// Sustained DRAM bandwidth in bytes/s.
    pub memory_bandwidth: f64,
    /// Peak FP16/FP32 (AVX-512/AMX) throughput in FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak bandwidth achievable by the GEMV loops.
    pub bandwidth_efficiency: f64,
}

impl HostCpu {
    /// Intel Core i9-13900K (the paper's Hermes-host configuration).
    pub fn i9_13900k() -> Self {
        HostCpu {
            name: "i9-13900K".to_string(),
            memory_bandwidth: 89.6e9,
            peak_flops: 2.0e12,
            bandwidth_efficiency: 0.85,
        }
    }

    /// Time (seconds) to perform a GEMV over `weight_bytes` of weights with
    /// `flops` of work per sequence for a batch of `batch` sequences.
    pub fn gemv_time(&self, weight_bytes: u64, flops: u64, batch: usize) -> f64 {
        let mem = weight_bytes as f64 / (self.memory_bandwidth * self.bandwidth_efficiency);
        let compute = (flops * batch as u64) as f64 / self.peak_flops;
        mem.max(compute)
    }

    /// Effective sustained memory bandwidth in bytes/s.
    pub fn effective_bandwidth(&self) -> f64 {
        self.memory_bandwidth * self.bandwidth_efficiency
    }
}

impl Default for HostCpu {
    fn default() -> Self {
        Self::i9_13900k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i9_matches_paper_bandwidth() {
        let cpu = HostCpu::i9_13900k();
        assert!((cpu.memory_bandwidth - 89.6e9).abs() < 1e6);
    }

    #[test]
    fn host_bandwidth_barely_beats_pcie() {
        // Paper (Section III-A): the host CPU only improves on PCIe a little
        // (89.6 GB/s vs 64 GB/s), which is why CPU offloading is not enough.
        let cpu = HostCpu::i9_13900k();
        let pcie = crate::PcieLink::gen4_x16();
        let ratio = cpu.memory_bandwidth / pcie.bandwidth;
        assert!((1.0..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gemv_is_bandwidth_bound_at_small_batch() {
        let cpu = HostCpu::i9_13900k();
        let bytes = 100_000_000u64;
        let flops = 2 * bytes;
        let t = cpu.gemv_time(bytes, flops, 1);
        let mem_only = bytes as f64 / cpu.effective_bandwidth();
        assert!((t - mem_only).abs() / mem_only < 1e-9);
    }

    #[test]
    fn very_large_batches_hit_compute_bound() {
        let cpu = HostCpu::i9_13900k();
        let bytes = 100_000_000u64;
        let flops = 2 * bytes;
        assert!(cpu.gemv_time(bytes, flops, 2048) > cpu.gemv_time(bytes, flops, 1));
    }
}
