//! GPU device catalog.

use serde::{Deserialize, Serialize};
use std::fmt;

use hermes_model::GIB;

/// A GPU device with the parameters the roofline cost model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Marketing name used in figures.
    pub name: String,
    /// Graphic memory capacity in bytes.
    pub memory_bytes: u64,
    /// Graphic memory bandwidth in bytes/s.
    pub memory_bandwidth: f64,
    /// Peak FP16 tensor throughput in FLOP/s.
    pub tensor_flops: f64,
    /// Approximate street price in USD (used for the budget comparison of
    /// Fig. 17 / Section V-F).
    pub price_usd: f64,
}

impl GpuDevice {
    /// NVIDIA RTX 4090: 24 GB GDDR6X, 936 GB/s, 330 tensor TFLOPS (FP16).
    pub fn rtx_4090() -> Self {
        GpuDevice {
            name: "RTX 4090".to_string(),
            memory_bytes: 24 * GIB,
            memory_bandwidth: 936.0e9,
            tensor_flops: 330.0e12,
            price_usd: 1600.0,
        }
    }

    /// NVIDIA RTX 3090: 24 GB GDDR6X, 936 GB/s, 142 tensor TFLOPS (FP16).
    pub fn rtx_3090() -> Self {
        GpuDevice {
            name: "RTX 3090".to_string(),
            memory_bytes: 24 * GIB,
            memory_bandwidth: 936.0e9,
            tensor_flops: 142.0e12,
            price_usd: 1000.0,
        }
    }

    /// NVIDIA Tesla T4: 16 GB GDDR6, 320 GB/s, 65 tensor TFLOPS (FP16).
    pub fn tesla_t4() -> Self {
        GpuDevice {
            name: "Tesla T4".to_string(),
            memory_bytes: 16 * GIB,
            memory_bandwidth: 320.0e9,
            tensor_flops: 65.0e12,
            price_usd: 900.0,
        }
    }

    /// NVIDIA A100-40GB-SXM4: 40 GB HBM2e, 1555 GB/s, 312 tensor TFLOPS
    /// (FP16). Used only by the TensorRT-LLM high-performance reference.
    pub fn a100_40gb() -> Self {
        GpuDevice {
            name: "A100-40GB-SXM4".to_string(),
            memory_bytes: 40 * GIB,
            memory_bandwidth: 1555.0e9,
            tensor_flops: 312.0e12,
            price_usd: 10_000.0,
        }
    }

    /// The consumer GPUs swept in Fig. 15.
    pub fn consumer_lineup() -> Vec<GpuDevice> {
        vec![Self::tesla_t4(), Self::rtx_3090(), Self::rtx_4090()]
    }

    /// Memory capacity usable for weights after reserving space for
    /// activations, workspace and framework overhead.
    pub fn usable_weight_bytes(&self) -> u64 {
        // Reserve ~2 GB for activations, CUDA context and workspace.
        self.memory_bytes.saturating_sub(2 * GIB)
    }

    /// Validate physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.memory_bytes == 0 {
            return Err("memory_bytes must be positive".into());
        }
        if self.memory_bandwidth <= 0.0 || self.tensor_flops <= 0.0 {
            return Err("bandwidth and throughput must be positive".into());
        }
        Ok(())
    }
}

impl fmt::Display for GpuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_specs() {
        let g4090 = GpuDevice::rtx_4090();
        assert_eq!(g4090.memory_bytes, 24 * GIB);
        assert!((g4090.memory_bandwidth - 936.0e9).abs() < 1e6);
        assert!((g4090.tensor_flops - 330.0e12).abs() < 1e9);

        let t4 = GpuDevice::tesla_t4();
        assert_eq!(t4.memory_bytes, 16 * GIB);
        assert!((t4.tensor_flops - 65.0e12).abs() < 1e9);

        for g in GpuDevice::consumer_lineup() {
            g.validate().unwrap();
        }
        GpuDevice::a100_40gb().validate().unwrap();
    }

    #[test]
    fn lineup_is_ordered_by_capability() {
        let lineup = GpuDevice::consumer_lineup();
        assert_eq!(lineup.len(), 3);
        assert!(lineup[0].tensor_flops < lineup[1].tensor_flops);
        assert!(lineup[1].tensor_flops < lineup[2].tensor_flops);
    }

    #[test]
    fn usable_memory_is_less_than_total() {
        let g = GpuDevice::rtx_4090();
        assert!(g.usable_weight_bytes() < g.memory_bytes);
        assert!(g.usable_weight_bytes() > 20 * GIB);
    }

    #[test]
    fn validation_catches_bad_devices() {
        let mut g = GpuDevice::rtx_4090();
        g.memory_bandwidth = 0.0;
        assert!(g.validate().is_err());
        let mut g = GpuDevice::rtx_4090();
        g.memory_bytes = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(GpuDevice::rtx_3090().to_string(), "RTX 3090");
    }
}
