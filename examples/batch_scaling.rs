//! Batch-size scaling of Hermes vs the Deja Vu offloading baseline on
//! OPT-66B (the behaviour behind Fig. 11).
//!
//! Run with: `cargo run --release --example batch_scaling`

use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let config = SystemConfig::paper_default();
    println!("OPT-66B end-to-end throughput (tokens/s)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "batch", "Deja Vu", "Hermes", "speedup"
    );
    for batch in [1usize, 2, 4, 8, 16] {
        let workload = Workload::paper_default(ModelId::Opt66B).with_batch(batch);
        let dejavu = try_run_system(SystemKind::DejaVu, &workload, &config)
            .map(|r| r.tokens_per_second())
            .unwrap_or(f64::NAN);
        let hermes = try_run_system(SystemKind::hermes(), &workload, &config)
            .map(|r| r.tokens_per_second())
            .unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>9.1}x",
            batch,
            dejavu,
            hermes,
            hermes / dejavu
        );
    }
}
