//! Streaming: drive a Hermes session token by token and print each
//! [`TokenEvent`](hermes_core::TokenEvent)'s latency as it is produced —
//! the shape a streaming/serving frontend would consume.
//!
//! Run with: `cargo run --release --example streaming`

use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() -> Result<(), hermes_core::HermesError> {
    let mut workload = Workload::paper_default(ModelId::Opt13B);
    workload.gen_len = 24;
    let config = SystemConfig::paper_default();

    let engine = SystemKind::hermes().engine(&config);
    let mut session = engine.start(&workload)?;

    let prefill = session.prefill()?;
    let mut elapsed = prefill.latency_seconds();
    println!(
        "prefill      {:>9.1} ms   (hot set {:.2} GiB on GPU)",
        elapsed * 1e3,
        prefill.hot_neuron_bytes as f64 / (1u64 << 30) as f64
    );

    while let Some(event) = session.step()? {
        elapsed += event.latency_seconds();
        println!(
            "token {:>3}   {:>9.2} ms   fc {:>6.2}  attn {:>6.2}  pred {:>5.3}  migr {:>5.3}   \
             imbalance {:.3}   t={:.3} s",
            event.index,
            event.latency_seconds() * 1e3,
            event.latency.fc * 1e3,
            event.latency.attention * 1e3,
            event.latency.predictor * 1e3,
            event.latency.migration * 1e3,
            event.dimm_imbalance,
            elapsed
        );
    }

    let report = session.report();
    let stats = &report.latency_stats;
    println!(
        "\n{}: TTFT {:.1} ms, TPOT mean {:.2} ms (p50 {:.2} / p95 {:.2} / p99 {:.2}), {:.2} tokens/s",
        report.system,
        stats.ttft * 1e3,
        stats.tpot_mean * 1e3,
        stats.tpot_p50 * 1e3,
        stats.tpot_p95 * 1e3,
        stats.tpot_p99 * 1e3,
        report.tokens_per_second()
    );
    Ok(())
}
