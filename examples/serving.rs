//! Serving simulation: offer an open-loop Poisson request stream to Hermes
//! with continuous batching and print each request's lifecycle plus the
//! aggregate serving metrics.
//!
//! Run with: `cargo run --release --example serving`

use hermes::core::{ArrivalProcess, SystemConfig, SystemKind, Workload};
use hermes::model::ModelId;
use hermes::serve::{simulate, AdmissionConfig, ServingSimulation};

fn main() -> Result<(), hermes::core::HermesError> {
    let mut template = Workload::paper_default(ModelId::Opt30B);
    template.prompt_len = 64;
    template.gen_len = 32;

    // 12 requests arriving at 0.5 requests/s, at most 4 running at once.
    let sim = ServingSimulation::new(template, ArrivalProcess::Poisson { rate: 0.5 }, 12)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(4));
    let outcome = simulate(SystemKind::hermes(), &SystemConfig::paper_default(), &sim)?;

    println!("request   arrival   queued    TTFT      e2e     TPOT");
    for r in &outcome.records {
        println!(
            "{:>6}   {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>6.1}ms",
            r.id,
            r.arrival,
            r.queue_delay(),
            r.ttft(),
            r.e2e(),
            r.tpot() * 1e3
        );
    }

    let report = &outcome.report;
    println!(
        "\n{} ({} batching): {} requests in {:.1}s of virtual time",
        report.system, report.policy, report.completed, report.makespan
    );
    println!(
        "goodput {:.2} req/s, {:.1} tokens/s | TTFT p50 {:.2}s p95 {:.2}s | \
         TPOT p95 {:.0}ms | queue mean {:.2}s",
        report.goodput_rps(),
        report.tokens_per_second(),
        report.ttft.p50,
        report.ttft.p95,
        report.tpot.p95 * 1e3,
        report.queue_delay.mean
    );
    Ok(())
}
