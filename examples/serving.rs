//! Serving simulation: offer an open-loop Poisson request stream with
//! heterogeneous request lengths to Hermes, compare stall-the-world against
//! chunked (piggybacked) prefill, print each request's lifecycle plus the
//! aggregate serving metrics, show priority scheduling with KV-pressure
//! preemption protecting an interactive class under bursty overload,
//! compare restart-with-recompute eviction against paged swap-out
//! preemption (victim KV pages to the host/NDP swap tier instead of being
//! recomputed), and warm the radix prefix cache under a shared-system-prompt
//! load so followers reuse the leader's cached prefill copy-free.
//!
//! Run with: `cargo run --release --example serving`

use hermes::core::{
    ArrivalProcess, LengthDistribution, PrioritySpec, RequestClass, SystemConfig, SystemKind,
    Workload,
};
use hermes::model::ModelId;
use hermes::serve::{
    request_kv_bytes, simulate, AdmissionConfig, PreemptionPolicy, PrefillPolicy, PrefixCacheMode,
    PromptSpec, SchedulingPolicy, ServingSimulation, DEFAULT_BLOCK_TOKENS,
};

fn main() -> Result<(), hermes::core::HermesError> {
    let mut template = Workload::paper_default(ModelId::Opt30B);
    template.prompt_len = 64;
    template.gen_len = 32;

    // 12 requests arriving at 0.5 requests/s with per-request lengths, at
    // most 4 running at once.
    let sim = ServingSimulation::new(template, ArrivalProcess::Poisson { rate: 0.5 }, 12)
        .with_admission(AdmissionConfig::unlimited().with_max_batch(4))
        .with_lengths(LengthDistribution::Uniform {
            prompt_min: 32,
            prompt_max: 96,
            gen_min: 8,
            gen_max: 48,
        });
    let config = SystemConfig::paper_default();
    let outcome = simulate(SystemKind::hermes(), &config, &sim)?;

    println!("request   prompt   gen   arrival   queued    TTFT      e2e     TPOT");
    for r in &outcome.records {
        println!(
            "{:>6}   {:>5}  {:>4}  {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>6.1}ms",
            r.id,
            r.prompt_len,
            r.gen_len,
            r.arrival,
            r.queue_delay(),
            r.ttft(),
            r.e2e(),
            r.tpot() * 1e3
        );
    }

    let report = &outcome.report;
    println!(
        "\n{} ({} batching, {} prefill): {} requests in {:.1}s of virtual time",
        report.system, report.policy, report.prefill_policy, report.completed, report.makespan
    );
    println!(
        "goodput {:.2} req/s, {:.1} tokens/s | TTFT p50 {:.2}s p95 {:.2}s | \
         TPOT p95 {:.0}ms | queue mean {:.2}s",
        report.goodput_rps(),
        report.tokens_per_second(),
        report.ttft.p50,
        report.ttft.p95,
        report.tpot.p95 * 1e3,
        report.queue_delay.mean
    );

    // Chunked prefill: the same load, but prompts trickle in 8-token chunks
    // alongside the running decode batch instead of stalling it.
    let chunked = simulate(
        SystemKind::hermes(),
        &config,
        &sim.with_prefill(PrefillPolicy::Chunked {
            chunk_tokens: 8,
            budget: 16,
        }),
    )?;
    println!(
        "chunked prefill: TPOT p95 {:.0}ms (vs {:.0}ms stalled) | TTFT p95 {:.2}s (vs {:.2}s)",
        chunked.report.tpot.p95 * 1e3,
        report.tpot.p95 * 1e3,
        chunked.report.ttft.p95,
        report.ttft.p95
    );

    // Priority scheduling with KV-pressure preemption: interactive tier-0
    // requests (3 s TTFT deadline) interleaved with best-effort tier-2 bulk
    // under bursty overload and a two-seat KV budget. A blocked tier-0
    // request evicts a running tier-2 one, which later restarts with
    // recompute (its prompt and generated tokens are re-prefilled).
    let mut template = Workload::paper_default(ModelId::Opt30B);
    template.prompt_len = 64;
    template.gen_len = 32;
    let kv_cap = request_kv_bytes(&template, template.prompt_len, template.gen_len) * 2;
    let overload = ServingSimulation::new(
        template,
        ArrivalProcess::Bursty {
            rate: 1.0,
            burst: 8,
        },
        16,
    )
    .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(kv_cap))
    .with_classes(PrioritySpec::Cycle {
        classes: vec![
            RequestClass::new(0).with_ttft_deadline(3.0),
            RequestClass::new(2),
        ],
    });
    let fcfs = simulate(SystemKind::hermes(), &config, &overload)?;
    let prioritized = simulate(
        SystemKind::hermes(),
        &config,
        &overload
            .clone()
            .with_scheduling(SchedulingPolicy::Priority)
            .with_preemption(PreemptionPolicy::EvictAndRefill),
    )?;
    println!("\npriority + preemption under bursty overload (vs FCFS):");
    for (outcome, label) in [(&fcfs, "fcfs    "), (&prioritized, "priority")] {
        let report = &outcome.report;
        let high = report.class(0).expect("tier 0 offered");
        println!(
            "{label}: completed {}/{} | evictions {} | tier-0 TTFT p95 {:.2}s | \
             tier-0 SLO attainment {:.0}%",
            report.completed,
            report.num_requests,
            report.preemptions,
            high.ttft.p95,
            high.slo_attainment().unwrap_or(1.0) * 100.0
        );
    }

    // Swap-out preemption over the paged KV pool: same overload, but the
    // KV budget is carved into fixed-size blocks (admission charges pages
    // actually held, not the worst case) and evicted victims page their KV
    // to the host/NDP swap tier instead of restarting with recompute — on
    // re-admission they pay the swap-in transfer and resume decoding
    // exactly where they stopped.
    let swapped = simulate(
        SystemKind::hermes(),
        &config,
        &overload
            .clone()
            .with_admission(
                AdmissionConfig::unlimited()
                    .with_kv_memory_bytes(kv_cap)
                    .with_paged_kv(DEFAULT_BLOCK_TOKENS),
            )
            .with_scheduling(SchedulingPolicy::Priority)
            .with_preemption(PreemptionPolicy::SwapOut),
    )?;
    let report = &swapped.report;
    let victims = report.class(2).expect("tier 2 offered");
    let refill_victims = prioritized.report.class(2).expect("tier 2 offered");
    println!("\nswap-out over the paged KV pool (vs evict-and-refill):");
    println!(
        "victim (tier-2) e2e p95 {:.2}s vs {:.2}s recomputed | evictions {}",
        victims.e2e.p95, refill_victims.e2e.p95, report.preemptions,
    );
    if let (Some(kv), Some(swap)) = (&report.kv, &report.swap) {
        println!(
            "pool: {} blocks x {} tokens, peak utilization {:.0}%, fragmentation {:.0}% | \
             swapped out {} times ({:.1} MiB each way)",
            kv.capacity_blocks.expect("bounded pool"),
            kv.block_tokens,
            kv.peak_utilization.expect("bounded pool") * 100.0,
            kv.fragmentation * 100.0,
            swap.swap_outs,
            swap.swapped_out_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    // Prefix caching: every request opens with the same 512-token system
    // prompt (a whole number of KV blocks). Cold, each request pays the
    // full offloaded prefill; warm, the first request inserts the prefix
    // into the radix cache over the paged pool and every follower maps the
    // cached blocks copy-free, skipping its prefill entirely.
    // Prefix-affinity scheduling additionally co-batches same-prefix
    // requests so cached content stays hot.
    let mut template = Workload::paper_default(ModelId::Opt30B);
    template.prompt_len = 512;
    template.gen_len = 8;
    let shared = ServingSimulation::new(template, ArrivalProcess::Poisson { rate: 0.2 }, 12)
        .with_admission(
            AdmissionConfig::unlimited()
                .with_max_batch(4)
                .with_paged_kv(DEFAULT_BLOCK_TOKENS),
        )
        .with_prompts(PromptSpec::SharedGroups {
            groups: 1,
            prefix_len: 512,
        });
    let cold = simulate(SystemKind::hermes(), &config, &shared)?;
    let warm = simulate(
        SystemKind::hermes(),
        &config,
        &shared
            .clone()
            .with_prefix_cache(PrefixCacheMode::Lru)
            .with_scheduling(SchedulingPolicy::PrefixAffinity),
    )?;
    println!("\nshared system prompt, cold vs. warm prefix cache:");
    println!(
        "cold: TTFT p50 {:.2}s | warm: TTFT p50 {:.2}s",
        cold.report.ttft.p50, warm.report.ttft.p50
    );
    if let Some(prefix) = &warm.report.prefix {
        println!(
            "cache: hit rate {:.0}% | reused {} prefill tokens, recomputed {} | \
             hit TTFT p50 {:.2}s vs miss {:.2}s | {} blocks resident",
            prefix.hit_rate * 100.0,
            prefix.reused_prefill_tokens,
            prefix.recomputed_prefill_tokens,
            prefix.ttft_hit.p50,
            prefix.ttft_miss.p50,
            prefix.resident_blocks,
        );
    }
    Ok(())
}
