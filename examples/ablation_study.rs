//! Scheduling ablation (the experiment behind Fig. 13): how much of Hermes'
//! performance comes from the offline partition, the online hot/cold
//! adjustment and the window-based DIMM load balancing.
//!
//! Run with: `cargo run --release --example ablation_study`

use hermes_core::{HermesOptions, HermesSystem, SystemConfig, Workload};
use hermes_model::ModelId;

fn main() {
    let config = SystemConfig::paper_default();
    let workload = Workload::paper_default(ModelId::Llama2_70B);
    let variants: [(&str, HermesOptions); 6] = [
        ("Hermes-random", HermesOptions::random_mapping()),
        ("Hermes-partition", HermesOptions::partition_only()),
        ("Hermes-token-adjustment", HermesOptions::token_adjustment()),
        ("Hermes-layer-adjustment", HermesOptions::layer_adjustment()),
        ("Hermes-adjustment", HermesOptions::adjustment_only()),
        ("Hermes (full)", HermesOptions::full()),
    ];
    println!("LLaMA2-70B, batch 1 — sparse-FC latency per token and speedup over Hermes-random\n");
    let mut baseline = None;
    for (name, options) in variants {
        let report = HermesSystem::new(workload.clone(), config.clone(), options)
            .run()
            .expect("supported");
        let fc_ms = report.breakdown.fc * 1e3 / workload.gen_len as f64;
        let base = *baseline.get_or_insert(fc_ms);
        println!(
            "{:<26} {:>8.2} ms/token   {:>5.2}x",
            name,
            fc_ms,
            base / fc_ms
        );
    }
}
