//! Quickstart: simulate the full Hermes system on OPT-13B with the paper's
//! default platform (one RTX 4090 + 8 NDP-DIMMs) via the session API and
//! print the report, including the serving-grade TTFT/TPOT metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use hermes_core::{SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() -> Result<(), hermes_core::HermesError> {
    let workload = Workload::paper_default(ModelId::Opt13B);
    let config = SystemConfig::paper_default();

    // Bind the system to the hardware, open a session for the workload and
    // drive it token by token; the report folds the per-token events.
    let engine = SystemKind::hermes().engine(&config);
    let mut session = engine.start(&workload)?;
    session.prefill()?;
    while session.step()?.is_some() {}
    let report = session.report();

    println!("system:              {}", report.system);
    println!("model:               {}", workload.model);
    println!(
        "batch / prompt / gen: {} / {} / {}",
        workload.batch, workload.prompt_len, workload.gen_len
    );
    println!("tokens/s (end-to-end): {:.2}", report.tokens_per_second());
    println!(
        "tokens/s (decode):     {:.2}",
        report.decode_tokens_per_second()
    );
    println!(
        "decode latency:        {:.2} ms/token",
        report.decode_latency_ms_per_token()
    );
    let stats = &report.latency_stats;
    println!("TTFT:                  {:.1} ms", stats.ttft * 1e3);
    println!(
        "TPOT mean/p50/p95/p99: {:.2} / {:.2} / {:.2} / {:.2} ms",
        stats.tpot_mean * 1e3,
        stats.tpot_p50 * 1e3,
        stats.tpot_p95 * 1e3,
        stats.tpot_p99 * 1e3
    );
    println!(
        "hot neurons on GPU:    {:.2} GiB",
        report.hot_neuron_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "GPU weights total:     {:.2} GiB",
        report.gpu_weight_bytes as f64 / (1u64 << 30) as f64
    );
    println!("mean DIMM imbalance:   {:.3}", report.dimm_imbalance);
    let b = &report.breakdown;
    println!("\nbreakdown (s): fc={:.3} attention={:.3} predictor={:.4} prefill={:.3} comm={:.4} migration={:.4} others={:.3}",
        b.fc, b.attention, b.predictor, b.prefill, b.communication, b.migration, b.others);
    Ok(())
}
