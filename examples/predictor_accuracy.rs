//! Train and evaluate the lightweight Hermes predictor on a synthetic
//! activation trace, and compare its footprint with the MLP predictor
//! baseline used by Deja Vu / PowerInfer.
//!
//! Run with: `cargo run --release --example predictor_accuracy`

use hermes_model::{ModelConfig, ModelId};
use hermes_predictor::{HermesPredictor, MlpPredictorModel, PredictorConfig, PredictorEval};
use hermes_sparsity::{SparsityProfile, TraceGenerator};

fn main() {
    // A reduced-depth LLaMA2-7B keeps per-neuron trace generation quick; the
    // accuracy statistics are per-layer and unaffected by depth.
    let mut cfg = ModelConfig::from_id(ModelId::Llama2_7B);
    cfg.num_layers = 4;
    let profile = SparsityProfile::for_model(&cfg);
    let mut gen = TraceGenerator::new(&cfg, &profile, 2024);

    let prefill = gen.generate(64);
    let mut predictor = HermesPredictor::new(&cfg, PredictorConfig::default());
    predictor.initialize_from_prefill(&prefill);
    predictor.correlation_mut().sample_from_trace(&prefill, 8);

    let eval_trace = gen.generate(128);
    let eval = PredictorEval::evaluate(&mut predictor, &eval_trace);
    println!("accuracy:  {:.2}%", 100.0 * eval.accuracy);
    println!("recall:    {:.2}%", 100.0 * eval.recall);
    println!("precision: {:.2}%", 100.0 * eval.precision);

    let full = ModelConfig::from_id(ModelId::Llama2_7B);
    let full_predictor = HermesPredictor::new(&full, PredictorConfig::default());
    let mlp = MlpPredictorModel::default();
    println!("\nLLaMA2-7B predictor footprints:");
    println!(
        "  Hermes state table:       {:.0} KB",
        full_predictor.states().storage_bytes() as f64 / 1024.0
    );
    println!(
        "  Hermes correlation table: {:.2} MB",
        full_predictor.correlation().storage_bytes() as f64 / 1e6
    );
    println!(
        "  MLP predictor (baseline): {:.2} GB + {:.0}% runtime overhead",
        mlp.storage_bytes(&full) as f64 / 1e9,
        100.0 * mlp.runtime_overhead_fraction(&full)
    );
}
