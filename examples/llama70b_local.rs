//! The paper's headline scenario: deploying LLaMA2-70B locally on a single
//! consumer GPU augmented with NDP-DIMMs, compared against a plain
//! offloading baseline and the 5x A100 TensorRT-LLM reference.
//!
//! Run with: `cargo run --release --example llama70b_local`

use hermes_core::{try_run_system, SystemConfig, SystemKind, Workload};
use hermes_model::ModelId;

fn main() {
    let workload = Workload::paper_default(ModelId::Llama2_70B);
    let config = SystemConfig::paper_default();

    println!("LLaMA2-70B, batch 1, 128/128 tokens, RTX 4090 + 8x 32GB NDP-DIMMs\n");
    for kind in [
        SystemKind::Accelerate,
        SystemKind::hermes_host(),
        SystemKind::hermes_base(),
        SystemKind::hermes(),
        SystemKind::TensorRtLlm { num_gpus: 5 },
    ] {
        match try_run_system(kind, &workload, &config) {
            Ok(report) => println!(
                "{:<28} {:>8.2} tokens/s   ({:>7.1} ms/token decode)",
                report.system,
                report.tokens_per_second(),
                report.decode_latency_ms_per_token()
            ),
            Err(reason) => println!("{:<28} not supported: {reason}", kind.name()),
        }
    }
    println!("\nHermes hardware budget is roughly $2,500 vs $50,000 for the 5x A100 system (Section V-F).");
}
