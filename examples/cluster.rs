//! Cluster serving: route a skewed burst of requests across a
//! heterogeneous fleet — two TensorRT-LLM GPU boxes with a deep KV budget
//! next to four NDP-DIMM Hermes boxes with tight budgets — compare blind
//! round-robin against KV-pressure-aware routing on fleet-wide tail
//! latency, then kill a replica mid-run and watch the survivors absorb its
//! in-flight work (restart with recompute, original arrival stamps kept).
//!
//! Run with: `cargo run --release --example cluster`

use hermes::core::{ArrivalProcess, SystemConfig, SystemKind, Workload};
use hermes::model::ModelId;
use hermes::serve::{
    request_kv_bytes, simulate_cluster, AdmissionConfig, ClusterSimulation, ReplicaEvent,
    ReplicaSpec, RoutingPolicy, ServingSimulation,
};

/// Two big GPU boxes and four small NDP boxes serving one bursty stream.
fn fleet(routing: RoutingPolicy, events: Vec<ReplicaEvent>) -> ClusterSimulation {
    let mut template = Workload::paper_default(ModelId::Opt13B);
    template.prompt_len = 48;
    template.gen_len = 12;

    // 80 requests in bursts of 10 at 20 requests/s — far above what any
    // single box absorbs without queueing.
    let scenario = ServingSimulation::new(
        template.clone(),
        ArrivalProcess::Bursty {
            rate: 20.0,
            burst: 10,
        },
        80,
    )
    .with_arrival_seed(9);

    let worst_kv = request_kv_bytes(&template, template.prompt_len, template.gen_len);
    let gpu_sim = scenario
        .clone()
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(worst_kv * 48));
    let ndp_sim = scenario
        .clone()
        .with_admission(AdmissionConfig::unlimited().with_kv_memory_bytes(worst_kv * 3));

    let config = SystemConfig::paper_default();
    let mut replicas = vec![
        ReplicaSpec::new(
            "gpu-0",
            SystemKind::TensorRtLlm { num_gpus: 1 },
            config.clone(),
            gpu_sim.clone(),
        ),
        ReplicaSpec::new(
            "gpu-1",
            SystemKind::TensorRtLlm { num_gpus: 1 },
            config.clone(),
            gpu_sim,
        ),
    ];
    for i in 0..4 {
        replicas.push(ReplicaSpec::new(
            format!("ndp-{i}"),
            SystemKind::hermes_base(),
            config.clone(),
            ndp_sim.clone(),
        ));
    }
    ClusterSimulation::new(scenario, replicas, routing).with_events(events)
}

fn main() -> Result<(), hermes::core::HermesError> {
    // Round 1: routing policy head to head, healthy fleet.
    println!("routing            ttft p50  ttft p95   e2e p95  imbalance");
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::KvPressure,
    ] {
        let outcome = simulate_cluster(&fleet(routing, Vec::new()))?;
        let r = &outcome.report;
        println!(
            "{:<18} {:>7.2}s {:>8.2}s {:>8.2}s {:>9.3}",
            r.routing, r.ttft.p50, r.ttft.p95, r.e2e.p95, r.load_imbalance
        );
    }

    // Round 2: same fleet under KV-pressure routing, but gpu-1 dies just
    // after the second burst lands and comes back two seconds later.
    // Everything it held — queued, prefilling, decoding — is re-dispatched
    // to the survivors and recomputed; every request still completes
    // exactly once.
    let outcome = simulate_cluster(&fleet(
        RoutingPolicy::KvPressure,
        vec![
            ReplicaEvent::Fail {
                replica: 1,
                at: 2.1,
            },
            ReplicaEvent::Recover {
                replica: 1,
                at: 4.0,
            },
        ],
    ))?;
    let r = &outcome.report;
    println!(
        "\nwith gpu-1 failing at t=2.1s: {}/{} requests completed, {} re-dispatched",
        r.completed, r.num_requests, r.redispatches
    );
    println!("replica   routed  re-dispatched  completed  tokens");
    for replica in &r.replicas {
        println!(
            "{:<8} {:>6} {:>13} {:>10} {:>7}",
            replica.label,
            replica.routed,
            replica.redispatched,
            replica.report.completed,
            replica.report.generated_tokens
        );
    }
    let total: usize = outcome.records.iter().map(|rec| rec.gen_len).sum();
    assert_eq!(r.generated_tokens, total, "fleet token conservation");
    println!(
        "\nfleet p95 TTFT {:.2}s over a makespan of {:.1}s — token conservation holds \
         across the failure ({total} tokens).",
        r.ttft.p95, r.makespan
    );
    Ok(())
}
